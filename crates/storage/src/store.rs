//! The per-key-range LSM store: memtable + leveled SSTables + compaction.
//!
//! Each Spinnaker node hosts one [`RangeStore`] per cohort it participates
//! in (three by default). The store handles:
//!
//! * applying committed writes to the memtable,
//! * flushing the memtable to LSN-tagged SSTables (which advances the WAL
//!   checkpoint — the caller wires that up),
//! * merged reads across memtable + tables (newest version per column),
//! * **leveled compaction**: flushes land in an L0 tier (overlapping,
//!   newest first) feeding size-ratio levels L1..Ln whose tables are
//!   non-overlapping within a level, each level's capacity growing by a
//!   configurable fanout. Compaction garbage-collects superseded versions
//!   at the MVCC GC floor and, when the output is the deepest populated
//!   level, tombstones (paper §4.1: "in the background, smaller SSTables
//!   are merged into larger ones"),
//! * `rows_since` — the SSTable-backed catch-up feed used by recovery when
//!   the leader's log has rolled over (§6.1).
//!
//! Point reads probe each L0 table (span check, then bloom) but
//! binary-search the **single** candidate table per deeper level, so read
//! amplification is O(L0 + depth) instead of O(total tables). Deeper
//! levels get tighter bloom budgets (more bits per key), and all block
//! reads flow through the optional shared [`crate::BlockCache`].
//!
//! The pre-leveling flat set (size-tiered, fanin-4) survives behind
//! `StoreOptions::leveled = false` — the equivalence oracle for tests and
//! the baseline for the fig22 benchmark.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::vfs::SharedVfs;
use spinnaker_common::{Error, Key, Lsn, Result, Row, Timestamp, WriteOp};

use crate::cache::{CacheMetrics, SharedBlockCache};
use crate::memtable::Memtable;
use crate::merge::{vec_stream, MergeIter, RowStream};
use crate::sstable::{Table, TableBuilder, TableCtx, TableOptions};

/// `"SPINMF02"` little-endian: the v2 (leveled) manifest magic. A v1
/// manifest starts with its `next_id` field instead, which can never
/// collide with this value in practice.
const MANIFEST_MAGIC: u64 = 0x3230_464d_4e49_5053;

/// Deepest level a manifest may assign (a sanity bound on decode).
const MAX_LEVEL: u64 = 62;

/// Store tuning knobs.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Directory for SSTables and the manifest.
    pub dir: String,
    /// Flush the memtable once it exceeds this size.
    pub memtable_flush_bytes: usize,
    /// SSTable block/bloom parameters (the bloom budget is the L0
    /// baseline; deeper levels add `bloom_bits_step_per_level`).
    pub table: TableOptions,
    /// Leveled mode: compact L0 once it holds this many tables. Flat
    /// mode: merge a size tier once it accumulates this many tables.
    pub compaction_fanin: usize,
    /// Leveled compaction on (the default). `false` restores the
    /// pre-leveling flat set: one overlapping tier, size-tiered merges.
    pub leveled: bool,
    /// Capacity ratio between consecutive levels (L(n+1) = fanout * Ln).
    pub level_fanout: u64,
    /// L1 capacity in bytes; level n holds `base * fanout^(n-1)`.
    pub level_base_bytes: u64,
    /// Target size for individual tables written by leveled compaction
    /// (a level is a sorted run of tables about this big).
    pub level_table_target_bytes: u64,
    /// Extra bloom bits per key granted per level of depth — deeper
    /// levels hold more data and absorb more probes, so their filters
    /// get tighter false-positive budgets.
    pub bloom_bits_step_per_level: usize,
    /// Upper bound on the per-level bloom budget.
    pub bloom_bits_max: usize,
    /// Shared block cache for decoded data blocks (`None` = none).
    pub cache: Option<SharedBlockCache>,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            dir: "store".into(),
            memtable_flush_bytes: 4 << 20,
            table: TableOptions::default(),
            compaction_fanin: 4,
            leveled: true,
            level_fanout: 4,
            level_base_bytes: 4 << 20,
            level_table_target_bytes: 1 << 20,
            bloom_bits_step_per_level: 2,
            bloom_bits_max: 16,
            cache: None,
        }
    }
}

/// One page of a bounded scan: the rows returned plus the first key
/// *not* returned (the caller's resume cursor), or `None` when the
/// bounds were exhausted.
pub type ScanPage = (Vec<(Key, Row)>, Option<Key>);

/// A consistent full-store snapshot, streamed to a node joining a cohort
/// (replica movement): raw SSTable file images (L0 newest first, then
/// deeper levels in key order, matching the exporter's placement) plus
/// unflushed memtable rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreSnapshot {
    /// Raw SSTable file contents (L0 newest first, then L1.., matching
    /// `levels`).
    pub tables: Vec<Vec<u8>>,
    /// Level assignment for each entry of `tables` (parallel array), so
    /// the importer reproduces the exporter's leveled placement instead
    /// of flattening everything into L0.
    pub levels: Vec<u32>,
    /// Memtable row fragments (versions embedded).
    pub mem_rows: Vec<(Key, Row)>,
    /// Highest LSN captured anywhere in the snapshot.
    pub max_lsn: Lsn,
    /// The exporter's MVCC garbage-collection floor: the shipped tables
    /// were pruned at it, so the importer must not serve snapshot reads
    /// below it (`u64::MAX` = the exporter never pruned).
    pub gc_floor: Timestamp,
}

impl StoreSnapshot {
    /// Approximate wire size, for the network model.
    pub fn approx_size(&self) -> usize {
        self.tables.iter().map(Vec::len).sum::<usize>()
            + self.mem_rows.iter().map(|(k, r)| k.len() + r.approx_size()).sum::<usize>()
    }
}

/// Read/compaction observables for one store, surfaced through the
/// node's store-stats path (the same feed auto-reshard samples).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live tables per level, L0 first (trailing empty levels trimmed).
    pub tables_per_level: Vec<usize>,
    /// Point lookups served.
    pub point_gets: u64,
    /// Table probes skipped because the key fell outside the table's
    /// `[min_key, max_key]` span (no bloom work, no IO).
    pub span_skips: u64,
    /// Table probes rejected by the bloom filter (no IO).
    pub bloom_negatives: u64,
    /// Bloom passes where the key was present (useful IO).
    pub bloom_true_positives: u64,
    /// Bloom passes where the key was absent (wasted IO — the filter's
    /// false-positive cost).
    pub bloom_false_positives: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Total input bytes consumed by compactions.
    pub bytes_compacted: u64,
    /// Block-cache hits attributed to this store's tables.
    pub cache_hits: u64,
    /// Block-cache misses attributed to this store's tables.
    pub cache_misses: u64,
    /// Blocks actually read and decoded through the VFS.
    pub block_reads: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    point_gets: AtomicU64,
    span_skips: AtomicU64,
    bloom_negatives: AtomicU64,
    bloom_true_positives: AtomicU64,
    bloom_false_positives: AtomicU64,
    compactions: AtomicU64,
    bytes_compacted: AtomicU64,
}

struct Manifest {
    /// `(table id, level)` pairs in placement order: L0 entries newest
    /// first, deeper levels in key order.
    tables: Vec<(u64, u32)>,
    next_id: u64,
    /// The MVCC garbage-collection floor (see [`RangeStore::set_gc_floor`]).
    /// Persisted so that a store whose tables were pruned at some floor
    /// never re-opens claiming it can still serve below it — the
    /// `SnapshotTooOld` guard must survive restarts and store forks.
    /// `u64::MAX` = never armed (nothing has ever been pruned).
    gc_floor: Timestamp,
}

impl Encode for Manifest {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, MANIFEST_MAGIC);
        codec::put_u64(buf, self.next_id);
        codec::put_u64(buf, self.gc_floor);
        codec::put_varint(buf, self.tables.len() as u64);
        for (id, level) in &self.tables {
            codec::put_u64(buf, *id);
            codec::put_varint(buf, u64::from(*level));
        }
    }
}

impl Decode for Manifest {
    fn decode(buf: &mut &[u8]) -> Result<Manifest> {
        let first = codec::get_u64(buf)?;
        if first != MANIFEST_MAGIC {
            // v1 (pre-leveling) manifest: `first` is its `next_id`, the
            // table list is bare ids, newest first. Assigning them all to
            // L0 reproduces the flat set's semantics exactly; the next
            // compactions migrate them down the ladder.
            let gc_floor = codec::get_u64(buf)?;
            let n = codec::get_varint_len(buf, "manifest tables", 8)?;
            let mut tables = Vec::with_capacity(n);
            for _ in 0..n {
                tables.push((codec::get_u64(buf)?, 0));
            }
            return Ok(Manifest { tables, next_id: first, gc_floor });
        }
        let next_id = codec::get_u64(buf)?;
        let gc_floor = codec::get_u64(buf)?;
        // Each entry is an 8-byte id plus a >=1-byte level varint; a
        // corrupt count fails here instead of driving a huge allocation.
        let n = codec::get_varint_len(buf, "manifest tables", 9)?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            let id = codec::get_u64(buf)?;
            let level = codec::get_varint(buf)?;
            if level > MAX_LEVEL {
                return Err(Error::Corruption(format!("implausible manifest level {level}")));
            }
            let level = u32::try_from(level)
                .map_err(|_| Error::Corruption(format!("implausible manifest level {level}")))?;
            tables.push((id, level));
        }
        Ok(Manifest { tables, next_id, gc_floor })
    }
}

/// One open table plus its manifest id.
struct Slot {
    id: u64,
    table: Table,
}

fn min_key(slot: &Slot) -> &Key {
    &slot.table.meta().min_key
}

fn max_key(slot: &Slot) -> &Key {
    &slot.table.meta().max_key
}

fn sort_level(level: &mut [Slot]) {
    level.sort_by(|a, b| min_key(a).cmp(min_key(b)));
}

/// Which inputs a compaction consumes and where the output lands.
struct CompactionPlan {
    /// Manifest ids of every input table.
    input_ids: Vec<u64>,
    /// Output position as a `deeper` index (0 = L1).
    out_deeper: usize,
    /// Whether pruned tombstones may be dropped: true only when nothing
    /// deeper than the output level holds data, so no older version
    /// outside the merge can resurrect a deleted column.
    drop_tombstones: bool,
}

/// A leveled LSM store for one replicated key range.
pub struct RangeStore {
    vfs: SharedVfs,
    opts: StoreOptions,
    memtable: Memtable,
    /// L0: overlapping flush tier, newest first.
    l0: Vec<Slot>,
    /// `deeper[k]` is level k+1: tables non-overlapping, in key order.
    deeper: Vec<Vec<Slot>>,
    next_id: u64,
    gc_floor: Timestamp,
    /// Per-`deeper`-level round-robin compaction cursors: the max key of
    /// the last table compacted out of the level, so picking rotates
    /// through the key space instead of starving its tail.
    cursors: Vec<Key>,
    ctx: TableCtx,
    stats: StatsInner,
}

impl RangeStore {
    fn manifest_path(dir: &str) -> String {
        format!("{dir}/MANIFEST")
    }

    fn table_path(dir: &str, id: u64) -> String {
        format!("{dir}/sst-{id:010}")
    }

    /// Open the store, loading tables listed in the manifest. Level
    /// assignments are restored from a v2 manifest; a v1 manifest (the
    /// pre-leveling flat set) upgrades compatibly with every table in L0.
    pub fn open(vfs: SharedVfs, opts: StoreOptions) -> Result<RangeStore> {
        let mpath = Self::manifest_path(&opts.dir);
        let manifest = if vfs.exists(&mpath)? {
            let data = vfs.read_all(&mpath)?;
            Manifest::decode(&mut data.as_slice())?
        } else {
            Manifest { tables: Vec::new(), next_id: 1, gc_floor: Timestamp::MAX }
        };
        let ctx =
            TableCtx { cache: opts.cache.clone(), metrics: Arc::new(CacheMetrics::default()) };
        let mut l0: Vec<Slot> = Vec::new();
        let mut deeper: Vec<Vec<Slot>> = Vec::new();
        for &(id, level) in &manifest.tables {
            let table =
                Table::open_with(vfs.clone(), &Self::table_path(&opts.dir, id), ctx.clone())?;
            let slot = Slot { id, table };
            // Flat mode ignores levels: everything lives in the one tier.
            if level == 0 || !opts.leveled {
                l0.push(slot);
            } else {
                let k = level as usize - 1;
                while deeper.len() <= k {
                    deeper.push(Vec::new());
                }
                deeper[k].push(slot);
            }
        }
        // Restore each level's key order, then self-heal: a table that
        // overlaps its level peers (a manifest from a torn upgrade or a
        // bit flip that survived decode) is demoted to L0, where overlap
        // is legal. Reads are version-driven, so placement is a pure
        // performance property — demotion can never change results.
        for level in &mut deeper {
            sort_level(level);
            let mut i = 1;
            while i < level.len() {
                if min_key(&level[i]) <= max_key(&level[i - 1]) {
                    let slot = level.remove(i);
                    l0.push(slot);
                } else {
                    i += 1;
                }
            }
        }
        Ok(RangeStore {
            vfs,
            opts,
            memtable: Memtable::new(),
            l0,
            deeper,
            next_id: manifest.next_id,
            gc_floor: manifest.gc_floor,
            cursors: Vec::new(),
            ctx,
            stats: StatsInner::default(),
        })
    }

    fn manifest(&self) -> Manifest {
        let mut tables = Vec::with_capacity(self.table_count());
        for s in &self.l0 {
            tables.push((s.id, 0));
        }
        for (k, level) in self.deeper.iter().enumerate() {
            for s in level {
                tables.push((s.id, k as u32 + 1));
            }
        }
        Manifest { tables, next_id: self.next_id, gc_floor: self.gc_floor }
    }

    fn save_manifest(&self) -> Result<()> {
        self.vfs
            .write_atomic(&Self::manifest_path(&self.opts.dir), &self.manifest().encode_to_vec())
    }

    /// Apply a committed write at `lsn` (idempotent under replay).
    pub fn apply(&mut self, op: &WriteOp, lsn: Lsn) {
        self.memtable.apply(op, lsn);
    }

    /// Ingest a catch-up row fragment (versions embedded in the fragment).
    pub fn ingest_fragment(&mut self, key: &Key, fragment: &Row) {
        self.memtable.merge_row(key, fragment);
    }

    /// Probe one table for `key`, folding any fragment into `merged` and
    /// crediting the span/bloom statistics.
    fn probe(&self, slot: &Slot, key: &Key, merged: &mut Option<Row>) -> Result<()> {
        if !slot.table.span_contains(key) {
            self.stats.span_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if !slot.table.bloom_may_contain(key) {
            self.stats.bloom_negatives.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        match slot.table.get_unfiltered(key)? {
            Some(frag) => {
                self.stats.bloom_true_positives.fetch_add(1, Ordering::Relaxed);
                match merged.as_mut() {
                    Some(row) => row.merge_newer(&frag),
                    None => *merged = Some(frag),
                }
            }
            None => {
                self.stats.bloom_false_positives.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Merged read of a whole row (tombstones retained; callers filter).
    /// Every L0 table is span/bloom-probed; each deeper level contributes
    /// at most the **one** table whose span can contain the key, found by
    /// binary search — the leveled read-amplification win.
    pub fn get(&self, key: &Key) -> Result<Option<Row>> {
        self.stats.point_gets.fetch_add(1, Ordering::Relaxed);
        let mut merged: Option<Row> = self.memtable.get(key).cloned();
        for slot in &self.l0 {
            self.probe(slot, key, &mut merged)?;
        }
        for level in &self.deeper {
            // Last table whose min_key <= key is the only candidate in a
            // non-overlapping, key-ordered level.
            let i = level.partition_point(|s| min_key(s) <= key);
            if i > 0 {
                self.probe(&level[i - 1], key, &mut merged)?;
            }
        }
        Ok(merged)
    }

    /// Merged read of one column (tombstones retained).
    pub fn get_column(
        &self,
        key: &Key,
        col: &[u8],
    ) -> Result<Option<spinnaker_common::ColumnValue>> {
        Ok(self.get(key)?.and_then(|row| row.get(col).cloned()))
    }

    /// MVCC read: the row state **visible at** commit timestamp `ts` —
    /// per column, the newest retained version with `timestamp <= ts`
    /// (tombstones included; callers filter). `None` when nothing of the
    /// row is visible at `ts`.
    pub fn get_at(&self, key: &Key, ts: Timestamp) -> Result<Option<Row>> {
        Ok(self.get(key)?.map(|row| row.visible_at(ts)).filter(|r| !r.is_empty()))
    }

    /// Set the MVCC garbage-collection floor: subsequent compactions
    /// prune version-chain entries whose commit timestamp is at or
    /// below it (keeping the newest such entry, so reads pinned exactly
    /// at the floor still resolve). `u64::MAX` — the default for a
    /// fresh store — retains only the latest version, the pre-MVCC
    /// behaviour; the hosting replica lowers it to `now -
    /// snapshot_retain` on its maintenance tick. Floors only move
    /// forward — a lagging caller cannot resurrect pruned history, so
    /// regressions are ignored. The floor is persisted with the
    /// manifest (on the next flush/compaction) and inherited by
    /// split/merge/extract children and snapshot importers, so a store
    /// whose tables were pruned at some floor never claims it can
    /// serve below it. Passing `u64::MAX` (the "unarmed" sentinel) is a
    /// no-op: an armed floor can never be disarmed.
    pub fn set_gc_floor(&mut self, floor: Timestamp) {
        if floor == Timestamp::MAX {
            return;
        }
        if self.gc_floor == Timestamp::MAX || floor > self.gc_floor {
            self.gc_floor = floor;
        }
    }

    /// The current MVCC garbage-collection floor (`u64::MAX` = never
    /// armed: no version has ever been pruned, every timestamp is
    /// servable).
    pub fn gc_floor(&self) -> Timestamp {
        self.gc_floor
    }

    fn all_slots(&self) -> impl Iterator<Item = &Slot> {
        self.l0.iter().chain(self.deeper.iter().flatten())
    }

    /// Highest commit timestamp stored anywhere (memtable + SSTables):
    /// everything committed at or below this is applied here, which makes
    /// it the replica's snapshot-read safe point.
    pub fn max_ts(&self) -> Timestamp {
        let mut max = self.memtable.max_ts();
        for s in self.all_slots() {
            max = max.max(s.table.meta().max_ts);
        }
        max
    }

    /// True when the memtable has outgrown its budget.
    pub fn needs_flush(&self) -> bool {
        self.memtable.approx_bytes() >= self.opts.memtable_flush_bytes
    }

    /// Bloom/block options for a table written at `level`: deeper levels
    /// get progressively tighter false-positive budgets.
    fn table_opts(&self, level: u32) -> TableOptions {
        let mut t = self.opts.table.clone();
        let ceiling = self.opts.bloom_bits_max.max(t.bloom_bits_per_key);
        let extra = (level as usize).saturating_mul(self.opts.bloom_bits_step_per_level);
        t.bloom_bits_per_key = t.bloom_bits_per_key.saturating_add(extra).min(ceiling);
        t
    }

    /// Build one table at `level` from already-sorted rows.
    fn build_table(&mut self, rows: &[(Key, Row)], level: u32) -> Result<Slot> {
        let id = self.next_id;
        self.next_id += 1;
        let path = Self::table_path(&self.opts.dir, id);
        let mut builder = TableBuilder::new_with(
            self.vfs.clone(),
            &path,
            self.table_opts(level),
            self.ctx.clone(),
        )?;
        for (key, row) in rows {
            builder.add(key, row)?;
        }
        Ok(Slot { id, table: builder.finish()? })
    }

    /// Build a sorted run at `level`: the rows split into tables of
    /// roughly `level_table_target_bytes` each. Key-ordered input makes
    /// the output tables non-overlapping by construction.
    fn build_run(&mut self, rows: &[(Key, Row)], level: u32) -> Result<Vec<Slot>> {
        let target =
            usize::try_from(self.opts.level_table_target_bytes).unwrap_or(usize::MAX).max(1);
        let mut out = Vec::new();
        let mut start = 0;
        let mut acc = 0usize;
        for i in 0..rows.len() {
            acc = acc.saturating_add(rows[i].0.len() + rows[i].1.approx_size());
            if acc >= target || i + 1 == rows.len() {
                out.push(self.build_table(&rows[start..=i], level)?);
                start = i + 1;
                acc = 0;
            }
        }
        Ok(out)
    }

    /// Flush the memtable into a new L0 SSTable. Returns the highest LSN
    /// captured (the caller advances the WAL checkpoint to it), or `None`
    /// when the memtable was empty.
    pub fn flush(&mut self) -> Result<Option<Lsn>> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let max_lsn = self.memtable.max_lsn();
        let rows = self.memtable.take_sorted();
        let slot = self.build_table(&rows, 0)?;
        self.l0.insert(0, slot);
        self.save_manifest()?;
        Ok(Some(max_lsn))
    }

    /// Capacity of `deeper[k]` (level k+1): `level_base_bytes * fanout^k`.
    fn level_capacity(&self, k: usize) -> u64 {
        let fanout = self.opts.level_fanout.max(2);
        let mut cap = self.opts.level_base_bytes.max(1);
        for _ in 0..k {
            cap = cap.saturating_mul(fanout);
        }
        cap
    }

    fn level_bytes(&self, k: usize) -> u64 {
        self.deeper[k].iter().map(|s| s.table.meta().file_bytes).sum()
    }

    /// Run at most one compaction if one is due. Returns `true` when a
    /// compaction ran.
    ///
    /// Leveled mode: when L0 has accumulated `compaction_fanin` tables,
    /// all of L0 plus every overlapping L1 table merges into L1;
    /// otherwise the shallowest over-capacity level contributes one
    /// table (round-robin through its key space) plus the overlapping
    /// next-level tables. Flat mode: the seed size-tiered heuristic.
    pub fn maybe_compact(&mut self) -> Result<bool> {
        if !self.opts.leveled {
            return self.maybe_compact_flat();
        }
        let fanin = self.opts.compaction_fanin.max(1);
        if self.l0.len() >= fanin {
            let plan = self.plan_l0();
            self.run_compaction(plan)?;
            return Ok(true);
        }
        for k in 0..self.deeper.len() {
            if !self.deeper[k].is_empty() && self.level_bytes(k) > self.level_capacity(k) {
                let plan = self.plan_level(k);
                self.run_compaction(plan)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Plan the L0 -> L1 compaction: every L0 table plus every L1 table
    /// overlapping L0's combined span.
    fn plan_l0(&self) -> CompactionPlan {
        let mut input_ids: Vec<u64> = self.l0.iter().map(|s| s.id).collect();
        let span_min = self.l0.iter().map(min_key).min().cloned();
        let span_max = self.l0.iter().map(max_key).max().cloned();
        if let (Some(min), Some(max), Some(l1)) = (span_min, span_max, self.deeper.first()) {
            for s in l1 {
                if min_key(s) <= &max && max_key(s) >= &min {
                    input_ids.push(s.id);
                }
            }
        }
        let drop_tombstones = self.deeper.iter().skip(1).all(Vec::is_empty);
        CompactionPlan { input_ids, out_deeper: 0, drop_tombstones }
    }

    /// Plan one level-k+1 -> level-k+2 compaction: the cursor-picked
    /// table of `deeper[k]` plus the overlapping `deeper[k+1]` tables.
    fn plan_level(&mut self, k: usize) -> CompactionPlan {
        while self.cursors.len() <= k {
            self.cursors.push(Key::default());
        }
        let cursor = self.cursors[k].clone();
        let pick = self.deeper[k].iter().position(|s| min_key(s) > &cursor).unwrap_or(0);
        let picked = &self.deeper[k][pick];
        self.cursors[k] = max_key(picked).clone();
        let (min, max) = (min_key(picked).clone(), max_key(picked).clone());
        let mut input_ids = vec![picked.id];
        if let Some(next) = self.deeper.get(k + 1) {
            for s in next {
                if min_key(s) <= &max && max_key(s) >= &min {
                    input_ids.push(s.id);
                }
            }
        }
        let drop_tombstones = self.deeper.iter().skip(k + 2).all(Vec::is_empty);
        CompactionPlan { input_ids, out_deeper: k + 1, drop_tombstones }
    }

    fn find_table(&self, id: u64) -> Option<&Table> {
        self.all_slots().find(|s| s.id == id).map(|s| &s.table)
    }

    /// Execute a compaction plan: merge the inputs (pruning versions at
    /// the GC floor), write the output run, swap it into the level
    /// structure, persist the manifest, and only then delete the input
    /// files. A crash between manifest write and deletion leaks input
    /// files (harmless: ids are never re-listed and `create` truncates
    /// on reuse); a crash before the manifest write leaves the old,
    /// fully consistent level assignment in force.
    fn run_compaction(&mut self, plan: CompactionPlan) -> Result<()> {
        let floor = self.gc_floor;
        let (rows, in_bytes) = {
            let inputs: Vec<&Table> =
                plan.input_ids.iter().filter_map(|&id| self.find_table(id)).collect();
            let in_bytes: u64 = inputs.iter().map(|t| t.meta().file_bytes).sum();
            let streams: Vec<RowStream<'_>> =
                inputs.iter().map(|t| Box::new(t.iter()) as RowStream<'_>).collect();
            let mut rows: Vec<(Key, Row)> = Vec::new();
            for item in MergeIter::new(streams)? {
                let (key, row) = item?;
                // MVCC garbage collection rides compaction: superseded
                // versions at or below the snapshot floor are dropped (the
                // newest at-or-below survives for floor-pinned readers),
                // and tombstones below the floor are dropped only when the
                // output is the deepest populated level, where nothing
                // older survives to resurrect.
                let row = row.prune(floor, plan.drop_tombstones);
                if !row.is_empty() {
                    rows.push((key, row));
                }
            }
            (rows, in_bytes)
        };
        while self.deeper.len() <= plan.out_deeper {
            self.deeper.push(Vec::new());
        }
        let mut made = self.build_run(&rows, plan.out_deeper as u32 + 1)?;
        let mut removed = Vec::new();
        for id in &plan.input_ids {
            if let Some(pos) = self.l0.iter().position(|s| s.id == *id) {
                removed.push(self.l0.remove(pos));
                continue;
            }
            for level in &mut self.deeper {
                if let Some(pos) = level.iter().position(|s| s.id == *id) {
                    removed.push(level.remove(pos));
                    break;
                }
            }
        }
        self.deeper[plan.out_deeper].append(&mut made);
        sort_level(&mut self.deeper[plan.out_deeper]);
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_compacted.fetch_add(in_bytes, Ordering::Relaxed);
        self.save_manifest()?;
        for s in removed {
            s.table.delete()?;
        }
        Ok(())
    }

    /// Merge every table into the deepest populated level (dropping
    /// tombstones — nothing older can survive a total merge). Used by
    /// tests and by the catch-up path to bound the number of tables.
    pub fn compact_all(&mut self) -> Result<()> {
        if self.table_count() < 2 {
            return Ok(());
        }
        if !self.opts.leveled {
            let all: Vec<usize> = (0..self.l0.len()).collect();
            return self.compact_flat_indexes(&all, true);
        }
        let out_deeper = self.deeper.iter().rposition(|l| !l.is_empty()).unwrap_or(0);
        let input_ids = self.all_slots().map(|s| s.id).collect();
        self.run_compaction(CompactionPlan { input_ids, out_deeper, drop_tombstones: true })
    }

    /// Flat-mode (pre-leveling) compaction: when enough similarly-sized
    /// tables accumulate, merge them into one. Tombstones are dropped
    /// only when *all* tables take part.
    fn maybe_compact_flat(&mut self) -> Result<bool> {
        let fanin = self.opts.compaction_fanin;
        if fanin == 0 || self.l0.len() < fanin {
            return Ok(false);
        }
        // Order candidate indexes by file size ascending; pick the first
        // tier: the `fanin` smallest tables where the largest is within 4x
        // of the smallest (size-tiered heuristic).
        let mut by_size: Vec<usize> = (0..self.l0.len()).collect();
        by_size.sort_by_key(|&i| self.l0[i].table.meta().file_bytes);
        let group: Vec<usize> = by_size
            .windows(fanin)
            .find(|w| {
                let lo = self.l0[w[0]].table.meta().file_bytes;
                let hi = self.l0[w[fanin - 1]].table.meta().file_bytes;
                hi <= lo.saturating_mul(4).max(lo + (64 << 10))
            })
            .map(|w| w.to_vec())
            .unwrap_or_default();
        if group.is_empty() {
            return Ok(false);
        }
        let full_merge = group.len() == self.l0.len();
        self.compact_flat_indexes(&group, full_merge)?;
        Ok(true)
    }

    fn compact_flat_indexes(&mut self, picked: &[usize], drop_tombstones: bool) -> Result<()> {
        let floor = self.gc_floor;
        let (rows, in_bytes) = {
            let inputs: Vec<&Table> = picked.iter().map(|&i| &self.l0[i].table).collect();
            let in_bytes: u64 = inputs.iter().map(|t| t.meta().file_bytes).sum();
            let streams: Vec<RowStream<'_>> =
                inputs.iter().map(|t| Box::new(t.iter()) as RowStream<'_>).collect();
            let mut rows: Vec<(Key, Row)> = Vec::new();
            for item in MergeIter::new(streams)? {
                let (key, row) = item?;
                let row = row.prune(floor, drop_tombstones);
                if !row.is_empty() {
                    rows.push((key, row));
                }
            }
            (rows, in_bytes)
        };
        let new_slot = if rows.is_empty() { None } else { Some(self.build_table(&rows, 0)?) };
        // Replace the picked tables with the merged one, preserving overall
        // newest-first order: insert at the position of the newest input.
        let Some(&insert_at) = picked.iter().min() else {
            return Ok(()); // nothing picked: the merge is a no-op
        };
        let mut picked_sorted = picked.to_vec();
        picked_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut removed = Vec::new();
        for i in picked_sorted {
            removed.push(self.l0.remove(i));
        }
        if let Some(slot) = new_slot {
            self.l0.insert(insert_at.min(self.l0.len()), slot);
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_compacted.fetch_add(in_bytes, Ordering::Relaxed);
        self.save_manifest()?;
        for s in removed {
            s.table.delete()?;
        }
        Ok(())
    }

    /// Every row fragment containing at least one column written after
    /// `lsn`, in key order — the catch-up feed (§6.1). Fragments are
    /// trimmed to columns with `version > lsn` so only missing writes are
    /// shipped.
    pub fn rows_since(&self, lsn: Lsn) -> Result<Vec<(Key, Row)>> {
        let mut streams: Vec<RowStream<'_>> = Vec::new();
        if !self.memtable.is_empty() && self.memtable.max_lsn() > lsn {
            let rows: Vec<(Key, Row)> =
                self.memtable.iter().map(|(k, r)| (k.clone(), r.clone())).collect();
            streams.push(vec_stream(rows));
        }
        for slot in self.all_slots() {
            if slot.table.meta().max_lsn > lsn {
                streams.push(Box::new(slot.table.iter()));
            }
        }
        let mut out = Vec::new();
        for item in MergeIter::new(streams)? {
            let (key, row) = item?;
            let mut trimmed = Row::new();
            for (col, cv) in &row.columns {
                if Lsn::from_u64(cv.version) > lsn {
                    trimmed.set(col.clone(), cv.clone());
                }
            }
            if !trimmed.is_empty() {
                out.push((key, trimmed));
            }
        }
        Ok(out)
    }

    /// Fork the store at `at` into two children (dynamic range splitting):
    /// the memtable is cloned in halves, and every SSTable is assigned
    /// wholly to one side **at its own level** when its key bounds allow —
    /// a cheap file copy — or re-partitioned into per-side tables (still
    /// at its level) when it straddles the split key. Clipping preserves
    /// each level's non-overlap, since each side receives a disjoint
    /// sub-run. `self` is left untouched; the caller dissolves the parent
    /// once both children are durable.
    pub fn split(
        &self,
        at: &Key,
        left_opts: StoreOptions,
        right_opts: StoreOptions,
    ) -> Result<(RangeStore, RangeStore)> {
        let mut left = RangeStore::create(self.vfs.clone(), left_opts)?;
        let mut right = RangeStore::create(self.vfs.clone(), right_opts)?;
        // The children adopt tables pruned at the parent's floor; they
        // must not claim they can serve below it.
        left.gc_floor = self.gc_floor;
        right.gc_floor = self.gc_floor;
        for (key, row) in self.memtable.iter() {
            let side = if key < at { &mut left } else { &mut right };
            side.memtable.merge_row(key, row);
        }
        // L0 oldest first, inserting at the front, so each child's L0
        // ends newest-first like its parent (merges are version-driven,
        // but the invariant keeps compaction heuristics honest).
        for slot in self.l0.iter().rev() {
            Self::split_one(slot, at, 0, &mut left, &mut right)?;
        }
        for (k, level) in self.deeper.iter().enumerate() {
            for slot in level {
                Self::split_one(slot, at, k as u32 + 1, &mut left, &mut right)?;
            }
        }
        left.save_manifest()?;
        right.save_manifest()?;
        Ok((left, right))
    }

    fn split_one(
        slot: &Slot,
        at: &Key,
        level: u32,
        left: &mut RangeStore,
        right: &mut RangeStore,
    ) -> Result<()> {
        let meta = slot.table.meta();
        if &meta.max_key < at {
            left.adopt_table_file(slot.table.path(), level)
        } else if &meta.min_key >= at {
            right.adopt_table_file(slot.table.path(), level)
        } else {
            left.adopt_rows(slot.table.scan(&Key::default(), Some(at))?, level)?;
            right.adopt_rows(slot.table.scan(at, None)?, level)
        }
    }

    /// Extract the slice `[start, end)` into a fresh child store (the
    /// generic, bounds-driven fork used by table-only split recovery,
    /// where the exact split lineage may span several chained splits).
    /// Unlike [`RangeStore::split`] this always re-partitions rows; it is
    /// the rare-path variant, so simplicity wins over file reuse. The
    /// merged scan yields one sorted, duplicate-free run, which lands as
    /// non-overlapping L1 tables.
    pub fn extract(
        &self,
        start: &Key,
        end: Option<&Key>,
        opts: StoreOptions,
    ) -> Result<RangeStore> {
        let mut child = RangeStore::create(self.vfs.clone(), opts)?;
        child.gc_floor = self.gc_floor;
        child.adopt_rows(self.scan(start, end)?, 1)?;
        child.save_manifest()?;
        Ok(child)
    }

    /// Merge two sibling stores with *disjoint* key spans into one child
    /// (dynamic range merging — the inverse of [`RangeStore::split`]).
    /// Because no key can live on both sides, every SSTable is adopted
    /// wholesale as a cheap file copy **at its own level** (disjoint
    /// parents keep every level non-overlapping) and the memtables are
    /// unioned; no row-level merge is ever needed. The parents are left
    /// untouched; the caller dissolves them once the merged child is
    /// durable.
    pub fn merge(left: &RangeStore, right: &RangeStore, opts: StoreOptions) -> Result<RangeStore> {
        let mut merged = RangeStore::create(left.vfs.clone(), opts)?;
        // Adopt the stricter of the parents' floors (MAX inputs are
        // no-ops, so an armed floor always wins over an unarmed one).
        merged.set_gc_floor(left.gc_floor());
        merged.set_gc_floor(right.gc_floor());
        for parent in [left, right] {
            // L0 oldest first, inserting at the front, preserving each
            // side's newest-first order (the sides are disjoint, so their
            // relative interleaving carries no version semantics).
            for slot in parent.l0.iter().rev() {
                merged.adopt_table_file(slot.table.path(), 0)?;
            }
            for (k, level) in parent.deeper.iter().enumerate() {
                for slot in level {
                    merged.adopt_table_file(slot.table.path(), k as u32 + 1)?;
                }
            }
            for (key, row) in parent.memtable.iter() {
                merged.memtable.merge_row(key, row);
            }
        }
        merged.save_manifest()?;
        Ok(merged)
    }

    /// Export a consistent snapshot of the whole store: raw SSTable file
    /// images (with their level assignments) plus the memtable rows that
    /// have not been flushed yet. Used to stream a range's data to a node
    /// joining its cohort (replica movement); everything the store holds
    /// at call time is captured, so the snapshot is consistent up to
    /// [`RangeStore::max_lsn`].
    pub fn export_snapshot(&self) -> Result<StoreSnapshot> {
        let mut tables = Vec::with_capacity(self.table_count());
        let mut levels = Vec::with_capacity(self.table_count());
        for slot in &self.l0 {
            tables.push(self.vfs.read_all(slot.table.path())?);
            levels.push(0);
        }
        for (k, level) in self.deeper.iter().enumerate() {
            for slot in level {
                tables.push(self.vfs.read_all(slot.table.path())?);
                levels.push(k as u32 + 1);
            }
        }
        let mem_rows: Vec<(Key, Row)> =
            self.memtable.iter().map(|(k, r)| (k.clone(), r.clone())).collect();
        Ok(StoreSnapshot {
            tables,
            levels,
            mem_rows,
            max_lsn: self.max_lsn(),
            gc_floor: self.gc_floor,
        })
    }

    /// Import a snapshot into this (expected-fresh) store: the table
    /// images are written and synced as local SSTables at the exporter's
    /// level assignments, and the row fragments land in the memtable. The
    /// caller flushes and advances its WAL checkpoint to make the handoff
    /// durable.
    pub fn import_snapshot(&mut self, snap: &StoreSnapshot) -> Result<()> {
        // The imported tables were pruned at the exporter's floor; adopt
        // it so this store never serves snapshot reads below it.
        self.set_gc_floor(snap.gc_floor);
        // Reverse order, inserting L0 images at the front, so this store's
        // L0 ends newest-first exactly like the exporter's.
        for i in (0..snap.tables.len()).rev() {
            let level = snap.levels.get(i).copied().unwrap_or(0);
            let id = self.next_id;
            self.next_id += 1;
            let dst = Self::table_path(&self.opts.dir, id);
            let mut f = self.vfs.create(&dst)?;
            f.append(&snap.tables[i])?;
            f.sync()?;
            let table = Table::open_with(self.vfs.clone(), &dst, self.ctx.clone())?;
            self.place(Slot { id, table }, level);
        }
        for (key, row) in &snap.mem_rows {
            self.memtable.merge_row(key, row);
        }
        self.save_manifest()
    }

    /// Open a store on a fresh manifest, discarding any leftovers in the
    /// directory (stale state from a replica that departed earlier, or a
    /// fork that crashed before completing). The public entry point for a
    /// node about to receive a snapshot.
    pub fn recreate(vfs: SharedVfs, opts: StoreOptions) -> Result<RangeStore> {
        RangeStore::create(vfs, opts)
    }

    /// Open a store on a *fresh* manifest, ignoring any leftovers in the
    /// directory (e.g. from a fork that crashed before completing).
    fn create(vfs: SharedVfs, opts: StoreOptions) -> Result<RangeStore> {
        let ctx =
            TableCtx { cache: opts.cache.clone(), metrics: Arc::new(CacheMetrics::default()) };
        let store = RangeStore {
            vfs,
            opts,
            memtable: Memtable::new(),
            l0: Vec::new(),
            deeper: Vec::new(),
            next_id: 1,
            gc_floor: Timestamp::MAX,
            cursors: Vec::new(),
            ctx,
            stats: StatsInner::default(),
        };
        store.save_manifest()?;
        Ok(store)
    }

    /// Place an adopted slot at `level` (flat mode collapses everything
    /// into the one overlapping tier). L0 inserts at the front; deeper
    /// levels re-sort by min key.
    fn place(&mut self, slot: Slot, level: u32) {
        let level = if self.opts.leveled { level } else { 0 };
        if level == 0 {
            self.l0.insert(0, slot);
            return;
        }
        let k = level as usize - 1;
        while self.deeper.len() <= k {
            self.deeper.push(Vec::new());
        }
        self.deeper[k].push(slot);
        sort_level(&mut self.deeper[k]);
    }

    /// Adopt a whole SSTable from another store by copying its file,
    /// placing it at `level`.
    fn adopt_table_file(&mut self, src: &str, level: u32) -> Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        let dst = Self::table_path(&self.opts.dir, id);
        let data = self.vfs.read_all(src)?;
        let mut f = self.vfs.create(&dst)?;
        f.append(&data)?;
        f.sync()?;
        let table = Table::open_with(self.vfs.clone(), &dst, self.ctx.clone())?;
        self.place(Slot { id, table }, level);
        Ok(())
    }

    /// Build SSTables from already-sorted rows and adopt them at `level`
    /// (L0 gets a single table; deeper levels a target-sized run).
    fn adopt_rows(&mut self, rows: Vec<(Key, Row)>, level: u32) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        if level == 0 || !self.opts.leveled {
            let slot = self.build_table(&rows, 0)?;
            self.place(slot, 0);
            return Ok(());
        }
        let made = self.build_run(&rows, level)?;
        for slot in made {
            self.place(slot, level);
        }
        Ok(())
    }

    /// Merged scan of `[start, end)` across memtable and all tables.
    pub fn scan(&self, start: &Key, end: Option<&Key>) -> Result<Vec<(Key, Row)>> {
        Ok(self.scan_page(start, end, usize::MAX)?.0)
    }

    /// One page of a merged scan: up to `limit` rows of `[start, end)`
    /// across memtable and all tables, plus the first key **not**
    /// returned when more rows remain inside the bounds — the caller's
    /// resume cursor. `None` means the bounds are exhausted. This is the
    /// replica-side engine of the client `Scan` op: each request drains
    /// one page, and the continuation key lets a logical scan resume
    /// exactly where it stopped (even across range splits and merges,
    /// because the cursor is a plain key that re-routes through the
    /// range table).
    pub fn scan_page(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<ScanPage> {
        // Producing `limit` merged rows plus the resume key touches at
        // most the first `limit + 1` in-bounds entries of each stream
        // (streams are sorted and duplicate-free per key), so each
        // stream is truncated there. SSTable streams *seek* to the
        // cursor through the block index ([`Table::iter_from`]) and
        // decode one block at a time, so a page's memory and work are
        // bounded by the page limit and the block size — not by the
        // range size or by how far into the range the cursor sits.
        // Each deeper level is one stream: its tables are disjoint and
        // key-ordered, so chaining their seeked iterators stays sorted.
        let cap = limit.saturating_add(1);
        let mut streams: Vec<RowStream<'_>> = Vec::new();
        streams.push(Box::new(
            self.memtable
                .range_from(start)
                .filter(move |(k, _)| end.is_none_or(|e| *k < e))
                .take(cap)
                .map(|(k, r)| Ok((k.clone(), r.clone()))),
        ));
        for slot in &self.l0 {
            let hi = end.cloned();
            streams.push(Box::new(
                slot.table
                    .iter_from(start)
                    .take_while(move |item| match (item, &hi) {
                        (Ok((k, _)), Some(e)) => k < e,
                        _ => true, // unbounded, or an error to surface
                    })
                    .take(cap),
            ));
        }
        for level in &self.deeper {
            let tables: Vec<&Table> = level
                .iter()
                .map(|s| &s.table)
                .filter(|t| &t.meta().max_key >= start && end.is_none_or(|e| &t.meta().min_key < e))
                .collect();
            if tables.is_empty() {
                continue;
            }
            let from = start.clone();
            let hi = end.cloned();
            streams.push(Box::new(
                tables
                    .into_iter()
                    .flat_map(move |t| t.iter_from(&from))
                    .take_while(move |item| match (item, &hi) {
                        (Ok((k, _)), Some(e)) => k < e,
                        _ => true,
                    })
                    .take(cap),
            ));
        }
        let mut rows = Vec::new();
        for item in MergeIter::new(streams)? {
            let (key, row) = item?;
            if rows.len() >= limit {
                return Ok((rows, Some(key)));
            }
            rows.push((key, row));
        }
        Ok((rows, None))
    }

    /// One page of an **MVCC snapshot scan**: like [`RangeStore::scan_page`]
    /// but every returned row is the state visible at commit timestamp
    /// `ts` (newest version `<= ts` per column, tombstones retained for
    /// the caller to filter). Rows with nothing visible at `ts` — e.g.
    /// created after the snapshot was pinned — are omitted, but still
    /// consume page slots so the continuation cursor stays exact.
    pub fn scan_page_at(
        &self,
        start: &Key,
        end: Option<&Key>,
        limit: usize,
        ts: Timestamp,
    ) -> Result<ScanPage> {
        let (raw, resume) = self.scan_page(start, end, limit)?;
        let rows = raw
            .into_iter()
            .filter_map(|(key, row)| {
                let visible = row.visible_at(ts);
                (!visible.is_empty()).then_some((key, visible))
            })
            .collect();
        Ok((rows, resume))
    }

    /// Approximate total bytes held (memtable estimate + SSTable file
    /// sizes) — the size statistic behind automatic split triggers.
    pub fn approx_total_bytes(&self) -> u64 {
        self.memtable.approx_bytes() as u64
            + self.all_slots().map(|s| s.table.meta().file_bytes).sum::<u64>()
    }

    /// An approximate median key: the middle key of a merged scan. Costs a
    /// full scan, so callers invoke it only when a size/load trigger has
    /// already decided to split. `None` when the store holds no rows.
    pub fn mid_key(&self) -> Option<Key> {
        let rows = self.scan(&Key::default(), None).ok()?;
        if rows.len() < 2 {
            return None;
        }
        Some(rows[rows.len() / 2].0.clone())
    }

    /// Highest LSN applied to the memtable (`Lsn::ZERO` when clean).
    pub fn memtable_max_lsn(&self) -> Lsn {
        self.memtable.max_lsn()
    }

    /// Rows currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Number of live SSTables across every level.
    pub fn table_count(&self) -> usize {
        self.l0.len() + self.deeper.iter().map(Vec::len).sum::<usize>()
    }

    /// Live tables per level, L0 first, trailing empty levels trimmed.
    pub fn tables_per_level(&self) -> Vec<usize> {
        let mut v = vec![self.l0.len()];
        for level in &self.deeper {
            v.push(level.len());
        }
        while v.len() > 1 && v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    /// Key spans `(min, max)` of the tables at `level` (0 = L0), in
    /// placement order. Test/debug introspection for the per-level
    /// non-overlap invariant.
    pub fn level_spans(&self, level: usize) -> Vec<(Key, Key)> {
        let slots: &[Slot] = if level == 0 {
            &self.l0
        } else {
            match self.deeper.get(level - 1) {
                Some(v) => v,
                None => return Vec::new(),
            }
        };
        slots.iter().map(|s| (min_key(s).clone(), max_key(s).clone())).collect()
    }

    /// Block-cache registration ids of every live table (`None` entries
    /// omitted). Test/debug introspection for the cache-retirement
    /// invariant.
    pub fn live_cache_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.all_slots().filter_map(|s| s.table.cache_id()).collect();
        ids.sort_unstable();
        ids
    }

    /// Read/compaction statistics since this store was opened.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            tables_per_level: self.tables_per_level(),
            point_gets: self.stats.point_gets.load(Ordering::Relaxed),
            span_skips: self.stats.span_skips.load(Ordering::Relaxed),
            bloom_negatives: self.stats.bloom_negatives.load(Ordering::Relaxed),
            bloom_true_positives: self.stats.bloom_true_positives.load(Ordering::Relaxed),
            bloom_false_positives: self.stats.bloom_false_positives.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            bytes_compacted: self.stats.bytes_compacted.load(Ordering::Relaxed),
            cache_hits: self.ctx.metrics.hits(),
            cache_misses: self.ctx.metrics.misses(),
            block_reads: self.ctx.metrics.block_reads(),
        }
    }

    /// Highest column version stored anywhere in this store.
    pub fn max_lsn(&self) -> Lsn {
        let mut max = self.memtable.max_lsn();
        for s in self.all_slots() {
            max = max.max(s.table.meta().max_lsn);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spinnaker_common::op;
    use spinnaker_common::vfs::MemVfs;

    use super::*;

    fn store_on(vfs: &MemVfs) -> RangeStore {
        RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { memtable_flush_bytes: 1 << 20, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn read_your_writes_through_memtable() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("k", "c", "v1"), Lsn::new(1, 1));
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"v1");
    }

    #[test]
    fn reads_merge_memtable_over_tables() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("k", "c", "old"), Lsn::new(1, 1));
        s.apply(&op::put("k", "d", "keep"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("k", "c", "new"), Lsn::new(1, 3));
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"new");
        assert_eq!(row.get_live(b"d").unwrap().value.as_ref(), b"keep");
    }

    #[test]
    fn flush_returns_checkpoint_lsn_and_persists() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 1..=100u64 {
            s.apply(&op::put(&format!("k{i:03}"), "c", &format!("v{i}")), Lsn::new(1, i));
        }
        let cp = s.flush().unwrap().unwrap();
        assert_eq!(cp, Lsn::new(1, 100));
        assert_eq!(s.memtable_len(), 0);
        assert_eq!(s.table_count(), 1);

        // Restart from the crash image: manifest + table survive.
        let s2 = store_on(&vfs.crash_clone());
        assert_eq!(s2.table_count(), 1);
        let row = s2.get(&Key::from("k050")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"v50");
    }

    #[test]
    fn scan_page_limits_and_resumes() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 1..=20u64 {
            s.apply(&op::put(&format!("k{i:03}"), "c", &format!("v{i}")), Lsn::new(1, i));
            if i == 10 {
                s.flush().unwrap(); // straddle memtable and an SSTable
            }
        }
        // Page through the whole store at 7 rows per page.
        let mut cursor = Key::default();
        let mut seen = Vec::new();
        loop {
            let (rows, resume) = s.scan_page(&cursor, None, 7).unwrap();
            assert!(rows.len() <= 7);
            seen.extend(rows.into_iter().map(|(k, _)| k));
            match resume {
                Some(next) => {
                    assert!(seen.last().unwrap() < &next, "resume key advances");
                    cursor = next;
                }
                None => break,
            }
        }
        let all: Vec<Key> =
            s.scan(&Key::default(), None).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(seen, all, "paged scan equals one-shot scan");
        assert_eq!(seen.len(), 20);

        // Bounds are respected and an exhausted page reports no resume.
        let (rows, resume) =
            s.scan_page(&Key::from("k005"), Some(&Key::from("k010")), 100).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(resume.is_none());
    }

    /// A put of `key.c = val` whose commit timestamp is `ts`.
    fn put_at(key: &str, val: &str, ts: u64) -> WriteOp {
        WriteOp::put(
            Key::from(key),
            bytes::Bytes::from_static(b"c"),
            bytes::Bytes::copy_from_slice(val.as_bytes()),
            ts,
        )
    }

    #[test]
    fn get_at_reads_the_version_chain_across_flushes() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&put_at("k", "v1", 10), Lsn::new(1, 1));
        s.flush().unwrap();
        s.apply(&put_at("k", "v2", 20), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&put_at("k", "v3", 30), Lsn::new(1, 3)); // memtable
        let k = Key::from("k");
        assert!(s.get_at(&k, 9).unwrap().is_none(), "before the first write");
        for (ts, want) in [(10u64, "v1"), (15, "v1"), (20, "v2"), (29, "v2"), (30, "v3")] {
            let row = s.get_at(&k, ts).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), want.as_bytes(), "ts {ts}");
        }
        assert_eq!(s.max_ts(), 30);
    }

    #[test]
    fn scan_page_at_serves_a_fixed_cut() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..10u64 {
            s.apply(&put_at(&format!("k{i}"), &format!("old{i}"), 100 + i), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        // Overwrite half the keys, delete one, and add a new one — all
        // after the cut at ts=109.
        for i in 0..5u64 {
            s.apply(&put_at(&format!("k{i}"), &format!("new{i}"), 200 + i), Lsn::new(1, 20 + i));
        }
        s.apply(
            &WriteOp::delete(Key::from("k7"), bytes::Bytes::from_static(b"c"), 210),
            Lsn::new(1, 30),
        );
        s.apply(&put_at("k99", "born-late", 220), Lsn::new(1, 31));

        // Page through at the cut; every row reads its pre-overwrite
        // state, the deleted row is still live, the late row is absent.
        let mut cursor = Key::default();
        let mut seen = Vec::new();
        loop {
            let (rows, resume) = s.scan_page_at(&cursor, None, 3, 109).unwrap();
            seen.extend(rows);
            match resume {
                Some(next) => cursor = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 10, "exactly the ten rows of the cut");
        for (key, row) in &seen {
            let i: u64 = std::str::from_utf8(&key.as_bytes()[1..]).unwrap().parse().unwrap();
            assert_eq!(
                row.get_live(b"c").unwrap().value.as_ref(),
                format!("old{i}").as_bytes(),
                "row {i} reads the snapshot value"
            );
        }
        // The latest cut sees the overwrites, the delete, and the late row.
        let (now_rows, _) = s.scan_page_at(&Key::default(), None, 100, u64::MAX).unwrap();
        let live: Vec<&(Key, Row)> =
            now_rows.iter().filter(|(_, r)| r.get_live(b"c").is_some()).collect();
        assert_eq!(live.len(), 10, "10 old - 1 deleted + 1 late");
        assert!(s.get_at(&Key::from("k0"), u64::MAX).unwrap().is_some());
    }

    #[test]
    fn gc_floor_prunes_only_invisible_versions() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for (i, ts) in [(1u64, 10u64), (2, 20), (3, 30), (4, 40)] {
            s.apply(&put_at("k", &format!("v{i}"), ts), Lsn::new(1, i));
            s.flush().unwrap();
        }
        // Floor at 25: compaction must keep versions 40, 30 and the
        // newest at-or-below (20); only 10 is prunable.
        s.set_gc_floor(25);
        s.compact_all().unwrap();
        let k = Key::from("k");
        let head = s.get(&k).unwrap().unwrap();
        let retained: Vec<u64> = head.get(b"c").unwrap().versions().map(|v| v.timestamp).collect();
        assert_eq!(retained, vec![40, 30, 20]);
        for (ts, want) in [(25u64, "v2"), (30, "v3"), (45, "v4")] {
            let row = s.get_at(&k, ts).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), want.as_bytes(), "ts {ts}");
        }
        // Without a floor (the default), compaction keeps only the head.
        let mut s2 = store_on(&vfs.crash_clone());
        s2.apply(&put_at("j", "x", 5), Lsn::new(2, 1));
        s2.apply(&put_at("j", "y", 6), Lsn::new(2, 2));
        s2.flush().unwrap();
        s2.compact_all().unwrap();
        assert_eq!(s2.get(&Key::from("j")).unwrap().unwrap().get(b"c").unwrap().older.len(), 0);
    }

    #[test]
    fn gc_floor_survives_restart_and_store_forks() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for (i, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            s.apply(&put_at("k", &format!("v{i}"), ts), Lsn::new(1, i));
            s.flush().unwrap();
        }
        s.set_gc_floor(25);
        s.compact_all().unwrap(); // prunes ts=10 and persists the floor
        assert_eq!(s.gc_floor(), 25);
        s.set_gc_floor(u64::MAX);
        assert_eq!(s.gc_floor(), 25, "an armed floor can never be disarmed");
        s.set_gc_floor(5);
        assert_eq!(s.gc_floor(), 25, "floors only move forward");

        // Restart: the floor must come back — the pruned history is gone,
        // so the store must keep refusing to claim it can serve below 25.
        let reopened = store_on(&vfs.crash_clone());
        assert_eq!(reopened.gc_floor(), 25, "floor persisted with the manifest");

        // Split children, an extracted child, a merged store, and a
        // snapshot importer all inherit it.
        let (left, right) = s
            .split(
                &Key::from("m"),
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        assert_eq!((left.gc_floor(), right.gc_floor()), (25, 25));
        let merged = RangeStore::merge(
            &left,
            &right,
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(merged.gc_floor(), 25);
        let extracted = s
            .extract(
                &Key::default(),
                None,
                StoreOptions { dir: "extracted".into(), ..Default::default() },
            )
            .unwrap();
        assert_eq!(extracted.gc_floor(), 25);
        let snap = s.export_snapshot().unwrap();
        assert_eq!(snap.gc_floor, 25);
        let mut joiner = RangeStore::recreate(
            Arc::new(MemVfs::new()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(joiner.gc_floor(), u64::MAX, "fresh store: unarmed");
        joiner.import_snapshot(&snap).unwrap();
        assert_eq!(joiner.gc_floor(), 25, "importer adopts the exporter's floor");
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        assert!(s.flush().unwrap().is_none());
        assert_eq!(s.table_count(), 0);
    }

    #[test]
    fn compaction_reduces_tables_and_preserves_data() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for batch in 0..5u64 {
            for i in 0..50u64 {
                let seq = batch * 50 + i + 1;
                s.apply(
                    &op::put(&format!("k{:03}", i), "c", &format!("b{batch}")),
                    Lsn::new(1, seq),
                );
            }
            s.flush().unwrap();
        }
        assert_eq!(s.table_count(), 5);
        assert!(s.maybe_compact().unwrap());
        assert!(s.table_count() < 5);
        assert_eq!(s.tables_per_level()[0], 0, "L0 drained into the ladder");
        // Latest batch value must win for every key.
        for i in 0..50u64 {
            let row = s.get(&Key::from(format!("k{:03}", i).as_str())).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"b4", "key k{i:03}");
        }
    }

    #[test]
    fn full_compaction_drops_tombstones() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("k", "c", "v"), Lsn::new(1, 1));
        s.flush().unwrap();
        s.apply(&op::delete("k", "c"), Lsn::new(1, 2));
        s.flush().unwrap();
        // Before GC the tombstone is still readable (raw).
        assert!(s.get(&Key::from("k")).unwrap().unwrap().get(b"c").unwrap().tombstone);
        s.compact_all().unwrap();
        // After a full merge the deleted column is gone entirely.
        assert!(s.get(&Key::from("k")).unwrap().is_none());
        assert_eq!(s.table_count(), 0, "everything was deleted");
    }

    #[test]
    fn shallow_compaction_keeps_tombstones_until_the_bottom() {
        // The leveled analogue of "partial merges must not drop
        // tombstones": a tombstone compacted into a level above data
        // survives; once it reaches the deepest populated level it goes.
        let vfs = MemVfs::new();
        let mut s = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions {
                compaction_fanin: 1,
                level_base_bytes: 1, // every level always over capacity
                ..Default::default()
            },
        )
        .unwrap();
        // Seed the bottom: value lands in L1, then is pushed to L2.
        s.apply(&op::put("k", "c", "v"), Lsn::new(1, 1));
        s.apply(&op::put("other", "c", "x"), Lsn::new(1, 2));
        s.flush().unwrap();
        assert!(s.maybe_compact().unwrap(), "L0 -> L1");
        assert!(s.maybe_compact().unwrap(), "L1 -> L2 (over tiny capacity)");
        assert_eq!(s.tables_per_level(), vec![0, 0, 1], "value now at L2");
        // Tombstone flushes to L0, then compacts to L1 — with L2
        // populated below, it must be retained.
        s.apply(&op::delete("k", "c"), Lsn::new(1, 3));
        s.flush().unwrap();
        assert!(s.maybe_compact().unwrap(), "tombstone L0 -> L1");
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert!(row.get(b"c").unwrap().tombstone, "tombstone retained above live data");
        assert!(row.get_live(b"c").is_none(), "the old value stays dead");
        // A total merge reaches the bottom and finally drops it.
        s.compact_all().unwrap();
        assert!(s.get(&Key::from("k")).unwrap().is_none());
    }

    #[test]
    fn flat_mode_partial_compaction_keeps_tombstones() {
        // The pre-leveling behaviour, pinned under `leveled: false`: a
        // size-tiered partial merge must retain tombstones because the
        // old value may live in a table outside the merge.
        let vfs = MemVfs::new();
        let mut s = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { compaction_fanin: 2, leveled: false, ..Default::default() },
        )
        .unwrap();
        // Oldest table holds the value...
        s.apply(&op::put("k", "c", "v"), Lsn::new(1, 1));
        // ...plus enough bulk that it lands in a bigger size tier.
        for i in 0..200u64 {
            s.apply(&op::put(&format!("pad{i:05}"), "c", &"x".repeat(64)), Lsn::new(1, 2 + i));
        }
        s.flush().unwrap();
        // Two small tables: the tombstone and another small write.
        s.apply(&op::delete("k", "c"), Lsn::new(1, 300));
        s.flush().unwrap();
        s.apply(&op::put("other", "c", "y"), Lsn::new(1, 301));
        s.flush().unwrap();
        assert!(s.maybe_compact().unwrap());
        // The tombstone must survive the partial merge: the old value still
        // exists in the big table and would otherwise resurrect.
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert!(row.get(b"c").unwrap().tombstone, "tombstone retained in partial merge");
        assert!(row.get_live(b"c").is_none());
    }

    #[test]
    fn leveled_ladder_grows_and_stays_disjoint() {
        let vfs = MemVfs::new();
        let mut s = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions {
                compaction_fanin: 2,
                level_base_bytes: 8 << 10,
                level_table_target_bytes: 4 << 10,
                ..Default::default()
            },
        )
        .unwrap();
        let mut lsn = 0u64;
        for round in 0..12u64 {
            for i in 0..120u64 {
                lsn += 1;
                s.apply(
                    &op::put(&format!("key{:04}", (i * 7 + round) % 600), "c", &"v".repeat(40)),
                    Lsn::new(1, lsn),
                );
            }
            s.flush().unwrap();
            while s.maybe_compact().unwrap() {}
        }
        let per_level = s.tables_per_level();
        assert!(per_level.len() >= 3, "ladder grew levels: {per_level:?}");
        // L1+ spans are sorted and pairwise disjoint.
        for level in 1..per_level.len() {
            let spans = s.level_spans(level);
            for w in spans.windows(2) {
                assert!(w[0].1 < w[1].0, "level {level} tables overlap: {spans:?}");
            }
        }
        // Every key still reads its latest value.
        for key in 0..600u64 {
            let k = Key::from(format!("key{key:04}").as_str());
            assert!(s.get(&k).unwrap().is_some(), "key {key} lost in the ladder");
        }
        // And a restart restores the exact level assignment.
        let s2 = RangeStore::open(
            Arc::new(vfs.crash_clone()),
            StoreOptions {
                compaction_fanin: 2,
                level_base_bytes: 8 << 10,
                level_table_target_bytes: 4 << 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s2.tables_per_level(), per_level, "levels survive restart");
    }

    #[test]
    fn v1_manifest_upgrades_to_l0() {
        // Hand-encode a v1 (pre-leveling) manifest over real table files
        // and verify the store opens with every table in L0, reads
        // intact, and the next save rewrites it as v2.
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("a", "c", "old"), Lsn::new(1, 1));
        s.flush().unwrap();
        s.apply(&op::put("a", "c", "new"), Lsn::new(1, 2));
        s.apply(&op::put("b", "c", "x"), Lsn::new(1, 3));
        s.flush().unwrap();
        s.set_gc_floor(7);
        s.compact_all().unwrap(); // persists the floor
                                  // Rewrite the manifest in v1 format: next_id, gc_floor, ids.
        let m = s.manifest();
        let mut v1 = Vec::new();
        codec::put_u64(&mut v1, m.next_id);
        codec::put_u64(&mut v1, m.gc_floor);
        codec::put_varint(&mut v1, m.tables.len() as u64);
        for (id, _) in &m.tables {
            codec::put_u64(&mut v1, *id);
        }
        use spinnaker_common::vfs::Vfs;
        vfs.write_atomic("store/MANIFEST", &v1).unwrap();

        let image = vfs.crash_clone();
        let mut reopened = store_on(&image);
        assert_eq!(reopened.tables_per_level(), vec![m.tables.len()], "v1 tables all land in L0");
        assert_eq!(reopened.gc_floor(), 7, "floor survives the upgrade");
        let row = reopened.get(&Key::from("a")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"new");
        // The next manifest write is v2 and round-trips levels.
        reopened.apply(&op::put("z", "c", "1"), Lsn::new(1, 9));
        reopened.flush().unwrap();
        let reread = store_on(&image.crash_clone());
        assert_eq!(reread.table_count(), reopened.table_count());
    }

    #[test]
    fn rows_since_trims_to_new_columns() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("a", "c", "1"), Lsn::new(1, 1));
        s.apply(&op::put("b", "c", "2"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("c", "c", "3"), Lsn::new(1, 3));

        let since = s.rows_since(Lsn::new(1, 1)).unwrap();
        let keys: Vec<_> = since.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![Key::from("b"), Key::from("c")]);
        // Catch-up from zero ships everything.
        assert_eq!(s.rows_since(Lsn::ZERO).unwrap().len(), 3);
        // Catch-up from the max ships nothing.
        assert_eq!(s.rows_since(Lsn::new(1, 3)).unwrap().len(), 0);
    }

    #[test]
    fn ingest_fragment_feeds_reads_and_flush() {
        let vfs = MemVfs::new();
        let mut src = store_on(&vfs);
        src.apply(&op::put("k", "c", "v"), Lsn::new(2, 9));
        let frags = src.rows_since(Lsn::ZERO).unwrap();

        let vfs2 = MemVfs::new();
        let mut dst = store_on(&vfs2);
        for (k, frag) in &frags {
            dst.ingest_fragment(k, frag);
        }
        let row = dst.get(&Key::from("k")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().version, Lsn::new(2, 9).as_u64());
        assert_eq!(dst.flush().unwrap().unwrap(), Lsn::new(2, 9));
    }

    #[test]
    fn scan_is_merged_and_bounded() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("a", "c", "1"), Lsn::new(1, 1));
        s.apply(&op::put("b", "c", "2"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("b", "c", "2new"), Lsn::new(1, 3));
        s.apply(&op::put("d", "c", "4"), Lsn::new(1, 4));
        let got = s.scan(&Key::from("a"), Some(&Key::from("c"))).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].1.get_live(b"c").unwrap().value.as_ref(), b"2new");
    }

    #[test]
    fn split_partitions_memtable_and_tables_by_key() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        // One table entirely left of the split, one straddling it, plus
        // live memtable rows on both sides.
        s.apply(&op::put("a1", "c", "t1"), Lsn::new(1, 1));
        s.apply(&op::put("a2", "c", "t1"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("a3", "c", "t2"), Lsn::new(1, 3));
        s.apply(&op::put("z1", "c", "t2"), Lsn::new(1, 4));
        s.flush().unwrap();
        s.apply(&op::put("a2", "c", "mem"), Lsn::new(1, 5)); // newer version
        s.apply(&op::put("z2", "c", "mem"), Lsn::new(1, 6));

        let at = Key::from("m");
        let (left, right) = s
            .split(
                &at,
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();

        // Every key reads identically from the child owning its side.
        for key in ["a1", "a2", "a3", "z1", "z2"] {
            let k = Key::from(key);
            let child = if k < at { &left } else { &right };
            assert_eq!(child.get(&k).unwrap(), s.get(&k).unwrap(), "child read differs for {key}");
        }
        // And nothing crossed the boundary.
        assert!(left.get(&Key::from("z1")).unwrap().is_none());
        assert!(right.get(&Key::from("a1")).unwrap().is_none());
        // The newest version won through the memtable clone.
        let row = left.get(&Key::from("a2")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"mem");
        // The parent is untouched.
        assert_eq!(s.get(&Key::from("a1")).unwrap().unwrap().len(), 1);
    }

    #[test]
    fn split_preserves_levels_and_disjointness() {
        let vfs = MemVfs::new();
        let mut s = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions {
                compaction_fanin: 2,
                level_table_target_bytes: 2 << 10,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200u64 {
            s.apply(&op::put(&format!("k{i:04}"), "c", &"v".repeat(50)), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        s.apply(&op::put("k0500", "c", "late"), Lsn::new(1, 900));
        s.flush().unwrap();
        while s.maybe_compact().unwrap() {}
        assert!(s.tables_per_level().len() > 1, "parent has deeper levels");

        let at = Key::from("k0100");
        let (left, right) = s
            .split(
                &at,
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        for child in [&left, &right] {
            let per_level = child.tables_per_level();
            for level in 1..per_level.len() {
                let spans = child.level_spans(level);
                for w in spans.windows(2) {
                    assert!(w[0].1 < w[1].0, "child level {level} overlaps: {spans:?}");
                }
            }
        }
        assert!(left.tables_per_level().len() > 1, "left kept its deep placement");
        for i in 0..200u64 {
            let k = Key::from(format!("k{i:04}").as_str());
            let child = if k < at { &left } else { &right };
            assert_eq!(child.get(&k).unwrap(), s.get(&k).unwrap(), "key k{i:04}");
        }
    }

    #[test]
    fn split_children_survive_restart() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..40u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        s.apply(&op::put("k99", "c", "late"), Lsn::new(1, 100));
        let (mut left, mut right) = s
            .split(
                &Key::from("k20"),
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        left.flush().unwrap();
        right.flush().unwrap();

        // Crash: only synced state survives; both children reopen intact.
        let image = vfs.crash_clone();
        let left2 = RangeStore::open(
            Arc::new(image.clone()),
            StoreOptions { dir: "left".into(), ..Default::default() },
        )
        .unwrap();
        let right2 = RangeStore::open(
            Arc::new(image),
            StoreOptions { dir: "right".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            left2.get(&Key::from("k07")).unwrap().unwrap().get_live(b"c").unwrap().value.as_ref(),
            b"v7"
        );
        assert!(left2.get(&Key::from("k20")).unwrap().is_none(), "boundary key went right");
        assert_eq!(
            right2.get(&Key::from("k99")).unwrap().unwrap().get_live(b"c").unwrap().value.as_ref(),
            b"late"
        );
    }

    #[test]
    fn merge_rejoins_split_children_losslessly() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..30u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
            if i % 7 == 0 {
                s.flush().unwrap();
            }
        }
        s.apply(&op::delete("k05", "c"), Lsn::new(1, 100));
        let at = Key::from("k15");
        let (left, right) = s
            .split(
                &at,
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        let merged = RangeStore::merge(
            &left,
            &right,
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        for i in 0..30u64 {
            let k = Key::from(format!("k{i:02}").as_str());
            assert_eq!(merged.get(&k).unwrap(), s.get(&k).unwrap(), "key k{i:02}");
        }
        assert_eq!(
            merged.scan(&Key::default(), None).unwrap(),
            s.scan(&Key::default(), None).unwrap(),
            "merged scan equals the original"
        );
    }

    #[test]
    fn merged_store_survives_restart() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..20u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        let (left, right) = s
            .split(
                &Key::from("k10"),
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        let mut merged = RangeStore::merge(
            &left,
            &right,
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        merged.flush().unwrap();
        let merged2 = RangeStore::open(
            Arc::new(vfs.crash_clone()),
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        for i in 0..20u64 {
            let k = Key::from(format!("k{i:02}").as_str());
            assert_eq!(merged2.get(&k).unwrap(), s.get(&k).unwrap());
        }
    }

    #[test]
    fn snapshot_export_import_roundtrip() {
        let vfs = MemVfs::new();
        let mut src = store_on(&vfs);
        for i in 0..25u64 {
            src.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(2, i + 1));
            if i == 10 {
                src.flush().unwrap();
            }
        }
        src.apply(&op::delete("k03", "c"), Lsn::new(2, 90));
        let snap = src.export_snapshot().unwrap();
        assert_eq!(snap.max_lsn, Lsn::new(2, 90));
        assert!(snap.approx_size() > 0);
        assert_eq!(snap.tables.len(), snap.levels.len(), "levels parallel the images");

        // Import on a different node's (fresh) filesystem.
        let vfs2 = MemVfs::new();
        let mut dst = RangeStore::recreate(
            Arc::new(vfs2.clone()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        dst.import_snapshot(&snap).unwrap();
        for i in 0..25u64 {
            let k = Key::from(format!("k{i:02}").as_str());
            assert_eq!(dst.get(&k).unwrap(), src.get(&k).unwrap(), "key k{i:02}");
        }
        assert_eq!(dst.max_lsn(), src.max_lsn());

        // The imported tables are durable; memtable rows need a flush.
        dst.flush().unwrap();
        let dst2 = RangeStore::open(
            Arc::new(vfs2.crash_clone()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            dst2.scan(&Key::default(), None).unwrap(),
            src.scan(&Key::default(), None).unwrap()
        );
    }

    #[test]
    fn snapshot_preserves_leveled_placement() {
        let vfs = MemVfs::new();
        let mut src = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { compaction_fanin: 2, ..Default::default() },
        )
        .unwrap();
        for i in 0..100u64 {
            src.apply(&op::put(&format!("k{i:03}"), "c", &"v".repeat(30)), Lsn::new(1, i + 1));
        }
        src.flush().unwrap();
        src.apply(&op::put("k999", "c", "x"), Lsn::new(1, 500));
        src.flush().unwrap();
        while src.maybe_compact().unwrap() {}
        src.apply(&op::put("k000", "c", "newest"), Lsn::new(1, 600));
        src.flush().unwrap();
        let per_level = src.tables_per_level();
        assert!(per_level.len() > 1, "source has a ladder: {per_level:?}");

        let snap = src.export_snapshot().unwrap();
        let mut dst = RangeStore::recreate(
            Arc::new(MemVfs::new()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        dst.import_snapshot(&snap).unwrap();
        assert_eq!(dst.tables_per_level(), per_level, "importer mirrors the exporter's levels");
        for i in 0..100u64 {
            let k = Key::from(format!("k{i:03}").as_str());
            assert_eq!(dst.get(&k).unwrap(), src.get(&k).unwrap(), "key k{i:03}");
        }
    }

    #[test]
    fn recreate_discards_stale_state() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("old", "c", "stale"), Lsn::new(1, 1));
        s.flush().unwrap();
        let fresh = RangeStore::recreate(Arc::new(vfs.clone()), StoreOptions::default()).unwrap();
        assert!(fresh.get(&Key::from("old")).unwrap().is_none(), "leftovers discarded");
        assert_eq!(fresh.table_count(), 0);
    }

    #[test]
    fn size_and_mid_key_statistics() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        assert_eq!(s.approx_total_bytes(), 0);
        assert!(s.mid_key().is_none());
        for i in 0..40u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &"x".repeat(32)), Lsn::new(1, i + 1));
        }
        let mem_only = s.approx_total_bytes();
        assert!(mem_only > 0);
        s.flush().unwrap();
        assert!(s.approx_total_bytes() > 0, "flushed bytes counted via file sizes");
        let mid = s.mid_key().unwrap();
        // The midpoint splits the keys roughly in half.
        let below = (0..40u64).filter(|i| Key::from(format!("k{i:02}").as_str()) < mid).count();
        assert!((10..=30).contains(&below), "mid key is central: {below} below");
    }

    #[test]
    fn max_lsn_spans_memtable_and_tables() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        assert_eq!(s.max_lsn(), Lsn::ZERO);
        s.apply(&op::put("a", "c", "1"), Lsn::new(1, 5));
        s.flush().unwrap();
        s.apply(&op::put("b", "c", "2"), Lsn::new(1, 3));
        assert_eq!(s.max_lsn(), Lsn::new(1, 5));
    }

    #[test]
    fn stats_track_reads_compactions_and_cache() {
        let cache = Arc::new(crate::BlockCache::new(1 << 20));
        let vfs = MemVfs::new();
        let mut s = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { cache: Some(cache.clone()), ..Default::default() },
        )
        .unwrap();
        for i in 0..50u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        s.apply(&op::put("zz", "c", "solo"), Lsn::new(1, 99));
        s.flush().unwrap();
        // A present key: one bloom true positive; the first block read is
        // a cache miss, a repeat is a hit.
        s.get(&Key::from("k10")).unwrap().unwrap();
        s.get(&Key::from("k10")).unwrap().unwrap();
        // A key outside the solo table's span: a span skip somewhere.
        s.get(&Key::from("a-absent")).unwrap();
        let st = s.stats();
        assert_eq!(st.point_gets, 3);
        assert!(st.bloom_true_positives >= 2, "{st:?}");
        assert!(st.span_skips >= 1, "{st:?}");
        assert!(st.cache_hits >= 1, "repeat read hits the cache: {st:?}");
        assert!(st.cache_misses >= 1, "{st:?}");
        assert_eq!(st.tables_per_level, s.tables_per_level());
        s.compact_all().unwrap();
        let st = s.stats();
        assert_eq!(st.compactions, 1);
        assert!(st.bytes_compacted > 0);
    }
}
