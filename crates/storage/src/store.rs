//! The per-key-range LSM store: memtable + SSTables + compaction.
//!
//! Each Spinnaker node hosts one [`RangeStore`] per cohort it participates
//! in (three by default). The store handles:
//!
//! * applying committed writes to the memtable,
//! * flushing the memtable to LSN-tagged SSTables (which advances the WAL
//!   checkpoint — the caller wires that up),
//! * merged reads across memtable + tables (newest version per column),
//! * size-tiered compaction that garbage-collects superseded versions and,
//!   on full merges, tombstones (paper §4.1: "in the background, smaller
//!   SSTables are merged into larger ones"),
//! * `rows_since` — the SSTable-backed catch-up feed used by recovery when
//!   the leader's log has rolled over (§6.1).

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::vfs::SharedVfs;
use spinnaker_common::{Key, Lsn, Result, Row, Timestamp, WriteOp};

use crate::memtable::Memtable;
use crate::merge::{vec_stream, MergeIter, RowStream};
use crate::sstable::{Table, TableBuilder, TableOptions};

/// Store tuning knobs.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Directory for SSTables and the manifest.
    pub dir: String,
    /// Flush the memtable once it exceeds this size.
    pub memtable_flush_bytes: usize,
    /// SSTable block/bloom parameters.
    pub table: TableOptions,
    /// Trigger compaction when a size tier accumulates this many tables.
    pub compaction_fanin: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            dir: "store".into(),
            memtable_flush_bytes: 4 << 20,
            table: TableOptions::default(),
            compaction_fanin: 4,
        }
    }
}

/// One page of a bounded scan: the rows returned plus the first key
/// *not* returned (the caller's resume cursor), or `None` when the
/// bounds were exhausted.
pub type ScanPage = (Vec<(Key, Row)>, Option<Key>);

/// A consistent full-store snapshot, streamed to a node joining a cohort
/// (replica movement): raw SSTable file images (newest first, matching the
/// exporter's table order) plus unflushed memtable rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreSnapshot {
    /// Raw SSTable file contents, newest first.
    pub tables: Vec<Vec<u8>>,
    /// Memtable row fragments (versions embedded).
    pub mem_rows: Vec<(Key, Row)>,
    /// Highest LSN captured anywhere in the snapshot.
    pub max_lsn: Lsn,
    /// The exporter's MVCC garbage-collection floor: the shipped tables
    /// were pruned at it, so the importer must not serve snapshot reads
    /// below it (`u64::MAX` = the exporter never pruned).
    pub gc_floor: Timestamp,
}

impl StoreSnapshot {
    /// Approximate wire size, for the network model.
    pub fn approx_size(&self) -> usize {
        self.tables.iter().map(Vec::len).sum::<usize>()
            + self.mem_rows.iter().map(|(k, r)| k.len() + r.approx_size()).sum::<usize>()
    }
}

struct Manifest {
    /// Live table ids, newest first.
    tables: Vec<u64>,
    next_id: u64,
    /// The MVCC garbage-collection floor (see [`RangeStore::set_gc_floor`]).
    /// Persisted so that a store whose tables were pruned at some floor
    /// never re-opens claiming it can still serve below it — the
    /// `SnapshotTooOld` guard must survive restarts and store forks.
    /// `u64::MAX` = never armed (nothing has ever been pruned).
    gc_floor: Timestamp,
}

impl Encode for Manifest {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.next_id);
        codec::put_u64(buf, self.gc_floor);
        codec::put_varint(buf, self.tables.len() as u64);
        for id in &self.tables {
            codec::put_u64(buf, *id);
        }
    }
}

impl Decode for Manifest {
    fn decode(buf: &mut &[u8]) -> Result<Manifest> {
        let next_id = codec::get_u64(buf)?;
        let gc_floor = codec::get_u64(buf)?;
        // Each table id is 8 bytes; a corrupt count fails here as a
        // typed codec error instead of driving a huge allocation.
        let n = codec::get_varint_len(buf, "manifest tables", 8)?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            tables.push(codec::get_u64(buf)?);
        }
        Ok(Manifest { tables, next_id, gc_floor })
    }
}

/// An LSM store for one replicated key range.
pub struct RangeStore {
    vfs: SharedVfs,
    opts: StoreOptions,
    memtable: Memtable,
    /// Open tables, newest first (matching `manifest.tables`).
    tables: Vec<Table>,
    manifest: Manifest,
}

impl RangeStore {
    fn manifest_path(dir: &str) -> String {
        format!("{dir}/MANIFEST")
    }

    fn table_path(dir: &str, id: u64) -> String {
        format!("{dir}/sst-{id:010}")
    }

    /// Open the store, loading tables listed in the manifest.
    pub fn open(vfs: SharedVfs, opts: StoreOptions) -> Result<RangeStore> {
        let mpath = Self::manifest_path(&opts.dir);
        let manifest = if vfs.exists(&mpath)? {
            let data = vfs.read_all(&mpath)?;
            Manifest::decode(&mut data.as_slice())?
        } else {
            Manifest { tables: Vec::new(), next_id: 1, gc_floor: Timestamp::MAX }
        };
        let mut tables = Vec::with_capacity(manifest.tables.len());
        for &id in &manifest.tables {
            tables.push(Table::open(vfs.clone(), &Self::table_path(&opts.dir, id))?);
        }
        Ok(RangeStore { vfs, opts, memtable: Memtable::new(), tables, manifest })
    }

    fn save_manifest(&self) -> Result<()> {
        self.vfs.write_atomic(&Self::manifest_path(&self.opts.dir), &self.manifest.encode_to_vec())
    }

    /// Apply a committed write at `lsn` (idempotent under replay).
    pub fn apply(&mut self, op: &WriteOp, lsn: Lsn) {
        self.memtable.apply(op, lsn);
    }

    /// Ingest a catch-up row fragment (versions embedded in the fragment).
    pub fn ingest_fragment(&mut self, key: &Key, fragment: &Row) {
        self.memtable.merge_row(key, fragment);
    }

    /// Merged read of a whole row (tombstones retained; callers filter).
    pub fn get(&self, key: &Key) -> Result<Option<Row>> {
        let mut merged: Option<Row> = None;
        if let Some(frag) = self.memtable.get(key) {
            merged = Some(frag.clone());
        }
        for table in &self.tables {
            if let Some(frag) = table.get(key)? {
                match merged.as_mut() {
                    Some(row) => row.merge_newer(&frag),
                    None => merged = Some(frag),
                }
            }
        }
        Ok(merged)
    }

    /// Merged read of one column (tombstones retained).
    pub fn get_column(
        &self,
        key: &Key,
        col: &[u8],
    ) -> Result<Option<spinnaker_common::ColumnValue>> {
        Ok(self.get(key)?.and_then(|row| row.get(col).cloned()))
    }

    /// MVCC read: the row state **visible at** commit timestamp `ts` —
    /// per column, the newest retained version with `timestamp <= ts`
    /// (tombstones included; callers filter). `None` when nothing of the
    /// row is visible at `ts`.
    pub fn get_at(&self, key: &Key, ts: Timestamp) -> Result<Option<Row>> {
        Ok(self.get(key)?.map(|row| row.visible_at(ts)).filter(|r| !r.is_empty()))
    }

    /// Set the MVCC garbage-collection floor: subsequent compactions
    /// prune version-chain entries whose commit timestamp is at or
    /// below it (keeping the newest such entry, so reads pinned exactly
    /// at the floor still resolve). `u64::MAX` — the default for a
    /// fresh store — retains only the latest version, the pre-MVCC
    /// behaviour; the hosting replica lowers it to `now -
    /// snapshot_retain` on its maintenance tick. Floors only move
    /// forward — a lagging caller cannot resurrect pruned history, so
    /// regressions are ignored. The floor is persisted with the
    /// manifest (on the next flush/compaction) and inherited by
    /// split/merge/extract children and snapshot importers, so a store
    /// whose tables were pruned at some floor never claims it can
    /// serve below it. Passing `u64::MAX` (the "unarmed" sentinel) is a
    /// no-op: an armed floor can never be disarmed.
    pub fn set_gc_floor(&mut self, floor: Timestamp) {
        if floor == Timestamp::MAX {
            return;
        }
        if self.manifest.gc_floor == Timestamp::MAX || floor > self.manifest.gc_floor {
            self.manifest.gc_floor = floor;
        }
    }

    /// The current MVCC garbage-collection floor (`u64::MAX` = never
    /// armed: no version has ever been pruned, every timestamp is
    /// servable).
    pub fn gc_floor(&self) -> Timestamp {
        self.manifest.gc_floor
    }

    /// Highest commit timestamp stored anywhere (memtable + SSTables):
    /// everything committed at or below this is applied here, which makes
    /// it the replica's snapshot-read safe point.
    pub fn max_ts(&self) -> Timestamp {
        let mut max = self.memtable.max_ts();
        for t in &self.tables {
            max = max.max(t.meta().max_ts);
        }
        max
    }

    /// True when the memtable has outgrown its budget.
    pub fn needs_flush(&self) -> bool {
        self.memtable.approx_bytes() >= self.opts.memtable_flush_bytes
    }

    /// Flush the memtable into a new SSTable. Returns the highest LSN
    /// captured (the caller advances the WAL checkpoint to it), or `None`
    /// when the memtable was empty.
    pub fn flush(&mut self) -> Result<Option<Lsn>> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let max_lsn = self.memtable.max_lsn();
        let rows = self.memtable.take_sorted();
        let id = self.manifest.next_id;
        self.manifest.next_id += 1;
        let path = Self::table_path(&self.opts.dir, id);
        let mut builder = TableBuilder::new(self.vfs.clone(), &path, self.opts.table.clone())?;
        for (key, row) in &rows {
            builder.add(key, row)?;
        }
        let table = builder.finish()?;
        self.tables.insert(0, table);
        self.manifest.tables.insert(0, id);
        self.save_manifest()?;
        Ok(Some(max_lsn))
    }

    /// Size-tiered compaction: when enough similarly-sized tables
    /// accumulate, merge them into one. Returns `true` when a compaction
    /// ran. Tombstones are garbage-collected only when *all* tables take
    /// part (nothing older can resurrect the deleted column).
    pub fn maybe_compact(&mut self) -> Result<bool> {
        let fanin = self.opts.compaction_fanin;
        if self.tables.len() < fanin {
            return Ok(false);
        }
        // Order candidate indexes by file size ascending; pick the first
        // tier: the `fanin` smallest tables where the largest is within 4x
        // of the smallest (size-tiered heuristic).
        let mut by_size: Vec<usize> = (0..self.tables.len()).collect();
        by_size.sort_by_key(|&i| self.tables[i].meta().file_bytes);
        let group: Vec<usize> = by_size
            .windows(fanin)
            .find(|w| {
                let lo = self.tables[w[0]].meta().file_bytes;
                let hi = self.tables[w[fanin - 1]].meta().file_bytes;
                hi <= lo.saturating_mul(4).max(lo + (64 << 10))
            })
            .map(|w| w.to_vec())
            .unwrap_or_default();
        if group.is_empty() {
            return Ok(false);
        }
        let full_merge = group.len() == self.tables.len();
        self.compact_indexes(&group, full_merge)?;
        Ok(true)
    }

    /// Merge every table (and leave tombstone GC to the merge). Used by
    /// tests and by the catch-up path to bound the number of tables.
    pub fn compact_all(&mut self) -> Result<()> {
        if self.tables.len() < 2 {
            return Ok(());
        }
        let all: Vec<usize> = (0..self.tables.len()).collect();
        self.compact_indexes(&all, true)
    }

    fn compact_indexes(&mut self, picked: &[usize], drop_tombstones: bool) -> Result<()> {
        let floor = self.manifest.gc_floor;
        let streams: Vec<RowStream<'_>> =
            picked.iter().map(|&i| Box::new(self.tables[i].iter()) as RowStream<'_>).collect();
        let mut out: Vec<(Key, Row)> = Vec::new();
        for item in MergeIter::new(streams)? {
            let (key, row) = item?;
            // MVCC garbage collection rides compaction: superseded
            // versions at or below the snapshot floor are dropped (the
            // newest at-or-below survives for floor-pinned readers), and
            // tombstones below the floor are dropped only on full merges
            // (`drop_tombstones`), where nothing older can resurrect.
            let row = row.prune(floor, drop_tombstones);
            if !row.is_empty() {
                out.push((key, row));
            }
        }

        let id = self.manifest.next_id;
        self.manifest.next_id += 1;
        let new_table = if out.is_empty() {
            None
        } else {
            let path = Self::table_path(&self.opts.dir, id);
            let mut builder = TableBuilder::new(self.vfs.clone(), &path, self.opts.table.clone())?;
            for (key, row) in &out {
                builder.add(key, row)?;
            }
            Some(builder.finish()?)
        };

        // Replace the picked tables with the merged one, preserving overall
        // newest-first order: insert at the position of the newest input.
        let Some(&insert_at) = picked.iter().min() else {
            return Ok(()); // nothing picked: the merge is a no-op
        };
        let mut picked_sorted = picked.to_vec();
        picked_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut removed = Vec::new();
        for i in picked_sorted {
            removed.push(self.tables.remove(i));
            self.manifest.tables.remove(i);
        }
        if let Some(t) = new_table {
            self.tables.insert(insert_at.min(self.tables.len()), t);
            self.manifest.tables.insert(insert_at.min(self.manifest.tables.len()), id);
        }
        self.save_manifest()?;
        for t in removed {
            t.delete()?;
        }
        Ok(())
    }

    /// Every row fragment containing at least one column written after
    /// `lsn`, in key order — the catch-up feed (§6.1). Fragments are
    /// trimmed to columns with `version > lsn` so only missing writes are
    /// shipped.
    pub fn rows_since(&self, lsn: Lsn) -> Result<Vec<(Key, Row)>> {
        let mut streams: Vec<RowStream<'_>> = Vec::new();
        if !self.memtable.is_empty() && self.memtable.max_lsn() > lsn {
            let rows: Vec<(Key, Row)> =
                self.memtable.iter().map(|(k, r)| (k.clone(), r.clone())).collect();
            streams.push(vec_stream(rows));
        }
        for table in &self.tables {
            if table.meta().max_lsn > lsn {
                streams.push(Box::new(table.iter()));
            }
        }
        let mut out = Vec::new();
        for item in MergeIter::new(streams)? {
            let (key, row) = item?;
            let mut trimmed = Row::new();
            for (col, cv) in &row.columns {
                if Lsn::from_u64(cv.version) > lsn {
                    trimmed.set(col.clone(), cv.clone());
                }
            }
            if !trimmed.is_empty() {
                out.push((key, trimmed));
            }
        }
        Ok(out)
    }

    /// Fork the store at `at` into two children (dynamic range splitting):
    /// the memtable is cloned in halves, and every SSTable is assigned
    /// wholly to one side when its key bounds allow — a cheap file copy —
    /// or re-partitioned into per-side tables when it straddles the split
    /// key. `self` is left untouched; the caller dissolves the parent once
    /// both children are durable.
    pub fn split(
        &self,
        at: &Key,
        left_opts: StoreOptions,
        right_opts: StoreOptions,
    ) -> Result<(RangeStore, RangeStore)> {
        let mut left = RangeStore::create(self.vfs.clone(), left_opts)?;
        let mut right = RangeStore::create(self.vfs.clone(), right_opts)?;
        // The children adopt tables pruned at the parent's floor; they
        // must not claim they can serve below it.
        left.manifest.gc_floor = self.manifest.gc_floor;
        right.manifest.gc_floor = self.manifest.gc_floor;
        for (key, row) in self.memtable.iter() {
            let side = if key < at { &mut left } else { &mut right };
            side.memtable.merge_row(key, row);
        }
        // Oldest table first, inserting at the front, so each child ends
        // newest-first like its parent (merges are version-driven, but the
        // invariant keeps compaction heuristics honest).
        for table in self.tables.iter().rev() {
            let meta = table.meta();
            if &meta.max_key < at {
                left.adopt_table_file(table.path())?;
            } else if &meta.min_key >= at {
                right.adopt_table_file(table.path())?;
            } else {
                left.adopt_rows(table.scan(&Key::default(), Some(at))?)?;
                right.adopt_rows(table.scan(at, None)?)?;
            }
        }
        left.save_manifest()?;
        right.save_manifest()?;
        Ok((left, right))
    }

    /// Extract the slice `[start, end)` into a fresh child store (the
    /// generic, bounds-driven fork used by table-only split recovery,
    /// where the exact split lineage may span several chained splits).
    /// Unlike [`RangeStore::split`] this always re-partitions rows; it is
    /// the rare-path variant, so simplicity wins over file reuse.
    pub fn extract(
        &self,
        start: &Key,
        end: Option<&Key>,
        opts: StoreOptions,
    ) -> Result<RangeStore> {
        let mut child = RangeStore::create(self.vfs.clone(), opts)?;
        child.manifest.gc_floor = self.manifest.gc_floor;
        child.adopt_rows(self.scan(start, end)?)?;
        child.save_manifest()?;
        Ok(child)
    }

    /// Merge two sibling stores with *disjoint* key spans into one child
    /// (dynamic range merging — the inverse of [`RangeStore::split`]).
    /// Because no key can live on both sides, every SSTable is adopted
    /// wholesale as a cheap file copy and the memtables are unioned; no
    /// row-level merge is ever needed. The parents are left untouched; the
    /// caller dissolves them once the merged child is durable.
    pub fn merge(left: &RangeStore, right: &RangeStore, opts: StoreOptions) -> Result<RangeStore> {
        let mut merged = RangeStore::create(left.vfs.clone(), opts)?;
        // Adopt the stricter of the parents' floors (MAX inputs are
        // no-ops, so an armed floor always wins over an unarmed one).
        merged.set_gc_floor(left.gc_floor());
        merged.set_gc_floor(right.gc_floor());
        for parent in [left, right] {
            // Oldest first, inserting at the front, preserving each side's
            // newest-first order (the sides are disjoint, so their relative
            // interleaving carries no version semantics).
            for table in parent.tables.iter().rev() {
                merged.adopt_table_file(table.path())?;
            }
            for (key, row) in parent.memtable.iter() {
                merged.memtable.merge_row(key, row);
            }
        }
        merged.save_manifest()?;
        Ok(merged)
    }

    /// Export a consistent snapshot of the whole store: raw SSTable file
    /// images plus the memtable rows that have not been flushed yet. Used
    /// to stream a range's data to a node joining its cohort (replica
    /// movement); everything the store holds at call time is captured, so
    /// the snapshot is consistent up to [`RangeStore::max_lsn`].
    pub fn export_snapshot(&self) -> Result<StoreSnapshot> {
        let mut tables = Vec::with_capacity(self.tables.len());
        for table in &self.tables {
            tables.push(self.vfs.read_all(table.path())?);
        }
        let mem_rows: Vec<(Key, Row)> =
            self.memtable.iter().map(|(k, r)| (k.clone(), r.clone())).collect();
        Ok(StoreSnapshot {
            tables,
            mem_rows,
            max_lsn: self.max_lsn(),
            gc_floor: self.manifest.gc_floor,
        })
    }

    /// Import a snapshot into this (expected-fresh) store: the table
    /// images are written and synced as local SSTables and the row
    /// fragments land in the memtable. The caller flushes and advances its
    /// WAL checkpoint to make the handoff durable.
    pub fn import_snapshot(&mut self, snap: &StoreSnapshot) -> Result<()> {
        // The imported tables were pruned at the exporter's floor; adopt
        // it so this store never serves snapshot reads below it.
        self.set_gc_floor(snap.gc_floor);
        // Oldest image first, inserting at the front, so this store ends
        // newest-first exactly like the exporter.
        for data in snap.tables.iter().rev() {
            let id = self.manifest.next_id;
            self.manifest.next_id += 1;
            let dst = Self::table_path(&self.opts.dir, id);
            let mut f = self.vfs.create(&dst)?;
            f.append(data)?;
            f.sync()?;
            self.tables.insert(0, Table::open(self.vfs.clone(), &dst)?);
            self.manifest.tables.insert(0, id);
        }
        for (key, row) in &snap.mem_rows {
            self.memtable.merge_row(key, row);
        }
        self.save_manifest()
    }

    /// Open a store on a fresh manifest, discarding any leftovers in the
    /// directory (stale state from a replica that departed earlier, or a
    /// fork that crashed before completing). The public entry point for a
    /// node about to receive a snapshot.
    pub fn recreate(vfs: SharedVfs, opts: StoreOptions) -> Result<RangeStore> {
        RangeStore::create(vfs, opts)
    }

    /// Open a store on a *fresh* manifest, ignoring any leftovers in the
    /// directory (e.g. from a fork that crashed before completing).
    fn create(vfs: SharedVfs, opts: StoreOptions) -> Result<RangeStore> {
        let store = RangeStore {
            vfs,
            opts,
            memtable: Memtable::new(),
            tables: Vec::new(),
            manifest: Manifest { tables: Vec::new(), next_id: 1, gc_floor: Timestamp::MAX },
        };
        store.save_manifest()?;
        Ok(store)
    }

    /// Adopt a whole SSTable from another store by copying its file.
    fn adopt_table_file(&mut self, src: &str) -> Result<()> {
        let id = self.manifest.next_id;
        self.manifest.next_id += 1;
        let dst = Self::table_path(&self.opts.dir, id);
        let data = self.vfs.read_all(src)?;
        let mut f = self.vfs.create(&dst)?;
        f.append(&data)?;
        f.sync()?;
        self.tables.insert(0, Table::open(self.vfs.clone(), &dst)?);
        self.manifest.tables.insert(0, id);
        Ok(())
    }

    /// Build a new SSTable from already-sorted rows and adopt it.
    fn adopt_rows(&mut self, rows: Vec<(Key, Row)>) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let id = self.manifest.next_id;
        self.manifest.next_id += 1;
        let path = Self::table_path(&self.opts.dir, id);
        let mut builder = TableBuilder::new(self.vfs.clone(), &path, self.opts.table.clone())?;
        for (key, row) in &rows {
            builder.add(key, row)?;
        }
        self.tables.insert(0, builder.finish()?);
        self.manifest.tables.insert(0, id);
        Ok(())
    }

    /// Merged scan of `[start, end)` across memtable and all tables.
    pub fn scan(&self, start: &Key, end: Option<&Key>) -> Result<Vec<(Key, Row)>> {
        Ok(self.scan_page(start, end, usize::MAX)?.0)
    }

    /// One page of a merged scan: up to `limit` rows of `[start, end)`
    /// across memtable and all tables, plus the first key **not**
    /// returned when more rows remain inside the bounds — the caller's
    /// resume cursor. `None` means the bounds are exhausted. This is the
    /// replica-side engine of the client `Scan` op: each request drains
    /// one page, and the continuation key lets a logical scan resume
    /// exactly where it stopped (even across range splits and merges,
    /// because the cursor is a plain key that re-routes through the
    /// range table).
    pub fn scan_page(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<ScanPage> {
        // Producing `limit` merged rows plus the resume key touches at
        // most the first `limit + 1` in-bounds entries of each stream
        // (streams are sorted and duplicate-free per key), so each
        // stream is truncated there. SSTable streams *seek* to the
        // cursor through the block index ([`Table::iter_from`]) and
        // decode one block at a time, so a page's memory and work are
        // bounded by the page limit and the block size — not by the
        // range size or by how far into the range the cursor sits.
        let cap = limit.saturating_add(1);
        let mut streams: Vec<RowStream<'_>> = Vec::new();
        streams.push(Box::new(
            self.memtable
                .range_from(start)
                .filter(move |(k, _)| end.is_none_or(|e| *k < e))
                .take(cap)
                .map(|(k, r)| Ok((k.clone(), r.clone()))),
        ));
        for table in &self.tables {
            let hi = end.cloned();
            streams.push(Box::new(
                table
                    .iter_from(start)
                    .take_while(move |item| match (item, &hi) {
                        (Ok((k, _)), Some(e)) => k < e,
                        _ => true, // unbounded, or an error to surface
                    })
                    .take(cap),
            ));
        }
        let mut rows = Vec::new();
        for item in MergeIter::new(streams)? {
            let (key, row) = item?;
            if rows.len() >= limit {
                return Ok((rows, Some(key)));
            }
            rows.push((key, row));
        }
        Ok((rows, None))
    }

    /// One page of an **MVCC snapshot scan**: like [`RangeStore::scan_page`]
    /// but every returned row is the state visible at commit timestamp
    /// `ts` (newest version `<= ts` per column, tombstones retained for
    /// the caller to filter). Rows with nothing visible at `ts` — e.g.
    /// created after the snapshot was pinned — are omitted, but still
    /// consume page slots so the continuation cursor stays exact.
    pub fn scan_page_at(
        &self,
        start: &Key,
        end: Option<&Key>,
        limit: usize,
        ts: Timestamp,
    ) -> Result<ScanPage> {
        let (raw, resume) = self.scan_page(start, end, limit)?;
        let rows = raw
            .into_iter()
            .filter_map(|(key, row)| {
                let visible = row.visible_at(ts);
                (!visible.is_empty()).then_some((key, visible))
            })
            .collect();
        Ok((rows, resume))
    }

    /// Approximate total bytes held (memtable estimate + SSTable file
    /// sizes) — the size statistic behind automatic split triggers.
    pub fn approx_total_bytes(&self) -> u64 {
        self.memtable.approx_bytes() as u64
            + self.tables.iter().map(|t| t.meta().file_bytes).sum::<u64>()
    }

    /// An approximate median key: the middle key of a merged scan. Costs a
    /// full scan, so callers invoke it only when a size/load trigger has
    /// already decided to split. `None` when the store holds no rows.
    pub fn mid_key(&self) -> Option<Key> {
        let rows = self.scan(&Key::default(), None).ok()?;
        if rows.len() < 2 {
            return None;
        }
        Some(rows[rows.len() / 2].0.clone())
    }

    /// Highest LSN applied to the memtable (`Lsn::ZERO` when clean).
    pub fn memtable_max_lsn(&self) -> Lsn {
        self.memtable.max_lsn()
    }

    /// Rows currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Number of live SSTables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Highest column version stored anywhere in this store.
    pub fn max_lsn(&self) -> Lsn {
        let mut max = self.memtable.max_lsn();
        for t in &self.tables {
            max = max.max(t.meta().max_lsn);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spinnaker_common::op;
    use spinnaker_common::vfs::MemVfs;

    use super::*;

    fn store_on(vfs: &MemVfs) -> RangeStore {
        RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { memtable_flush_bytes: 1 << 20, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn read_your_writes_through_memtable() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("k", "c", "v1"), Lsn::new(1, 1));
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"v1");
    }

    #[test]
    fn reads_merge_memtable_over_tables() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("k", "c", "old"), Lsn::new(1, 1));
        s.apply(&op::put("k", "d", "keep"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("k", "c", "new"), Lsn::new(1, 3));
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"new");
        assert_eq!(row.get_live(b"d").unwrap().value.as_ref(), b"keep");
    }

    #[test]
    fn flush_returns_checkpoint_lsn_and_persists() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 1..=100u64 {
            s.apply(&op::put(&format!("k{i:03}"), "c", &format!("v{i}")), Lsn::new(1, i));
        }
        let cp = s.flush().unwrap().unwrap();
        assert_eq!(cp, Lsn::new(1, 100));
        assert_eq!(s.memtable_len(), 0);
        assert_eq!(s.table_count(), 1);

        // Restart from the crash image: manifest + table survive.
        let s2 = store_on(&vfs.crash_clone());
        assert_eq!(s2.table_count(), 1);
        let row = s2.get(&Key::from("k050")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"v50");
    }

    #[test]
    fn scan_page_limits_and_resumes() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 1..=20u64 {
            s.apply(&op::put(&format!("k{i:03}"), "c", &format!("v{i}")), Lsn::new(1, i));
            if i == 10 {
                s.flush().unwrap(); // straddle memtable and an SSTable
            }
        }
        // Page through the whole store at 7 rows per page.
        let mut cursor = Key::default();
        let mut seen = Vec::new();
        loop {
            let (rows, resume) = s.scan_page(&cursor, None, 7).unwrap();
            assert!(rows.len() <= 7);
            seen.extend(rows.into_iter().map(|(k, _)| k));
            match resume {
                Some(next) => {
                    assert!(seen.last().unwrap() < &next, "resume key advances");
                    cursor = next;
                }
                None => break,
            }
        }
        let all: Vec<Key> =
            s.scan(&Key::default(), None).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(seen, all, "paged scan equals one-shot scan");
        assert_eq!(seen.len(), 20);

        // Bounds are respected and an exhausted page reports no resume.
        let (rows, resume) =
            s.scan_page(&Key::from("k005"), Some(&Key::from("k010")), 100).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(resume.is_none());
    }

    /// A put of `key.c = val` whose commit timestamp is `ts`.
    fn put_at(key: &str, val: &str, ts: u64) -> WriteOp {
        WriteOp::put(
            Key::from(key),
            bytes::Bytes::from_static(b"c"),
            bytes::Bytes::copy_from_slice(val.as_bytes()),
            ts,
        )
    }

    #[test]
    fn get_at_reads_the_version_chain_across_flushes() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&put_at("k", "v1", 10), Lsn::new(1, 1));
        s.flush().unwrap();
        s.apply(&put_at("k", "v2", 20), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&put_at("k", "v3", 30), Lsn::new(1, 3)); // memtable
        let k = Key::from("k");
        assert!(s.get_at(&k, 9).unwrap().is_none(), "before the first write");
        for (ts, want) in [(10u64, "v1"), (15, "v1"), (20, "v2"), (29, "v2"), (30, "v3")] {
            let row = s.get_at(&k, ts).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), want.as_bytes(), "ts {ts}");
        }
        assert_eq!(s.max_ts(), 30);
    }

    #[test]
    fn scan_page_at_serves_a_fixed_cut() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..10u64 {
            s.apply(&put_at(&format!("k{i}"), &format!("old{i}"), 100 + i), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        // Overwrite half the keys, delete one, and add a new one — all
        // after the cut at ts=109.
        for i in 0..5u64 {
            s.apply(&put_at(&format!("k{i}"), &format!("new{i}"), 200 + i), Lsn::new(1, 20 + i));
        }
        s.apply(
            &WriteOp::delete(Key::from("k7"), bytes::Bytes::from_static(b"c"), 210),
            Lsn::new(1, 30),
        );
        s.apply(&put_at("k99", "born-late", 220), Lsn::new(1, 31));

        // Page through at the cut; every row reads its pre-overwrite
        // state, the deleted row is still live, the late row is absent.
        let mut cursor = Key::default();
        let mut seen = Vec::new();
        loop {
            let (rows, resume) = s.scan_page_at(&cursor, None, 3, 109).unwrap();
            seen.extend(rows);
            match resume {
                Some(next) => cursor = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 10, "exactly the ten rows of the cut");
        for (key, row) in &seen {
            let i: u64 = std::str::from_utf8(&key.as_bytes()[1..]).unwrap().parse().unwrap();
            assert_eq!(
                row.get_live(b"c").unwrap().value.as_ref(),
                format!("old{i}").as_bytes(),
                "row {i} reads the snapshot value"
            );
        }
        // The latest cut sees the overwrites, the delete, and the late row.
        let (now_rows, _) = s.scan_page_at(&Key::default(), None, 100, u64::MAX).unwrap();
        let live: Vec<&(Key, Row)> =
            now_rows.iter().filter(|(_, r)| r.get_live(b"c").is_some()).collect();
        assert_eq!(live.len(), 10, "10 old - 1 deleted + 1 late");
        assert!(s.get_at(&Key::from("k0"), u64::MAX).unwrap().is_some());
    }

    #[test]
    fn gc_floor_prunes_only_invisible_versions() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for (i, ts) in [(1u64, 10u64), (2, 20), (3, 30), (4, 40)] {
            s.apply(&put_at("k", &format!("v{i}"), ts), Lsn::new(1, i));
            s.flush().unwrap();
        }
        // Floor at 25: compaction must keep versions 40, 30 and the
        // newest at-or-below (20); only 10 is prunable.
        s.set_gc_floor(25);
        s.compact_all().unwrap();
        let k = Key::from("k");
        let head = s.get(&k).unwrap().unwrap();
        let retained: Vec<u64> = head.get(b"c").unwrap().versions().map(|v| v.timestamp).collect();
        assert_eq!(retained, vec![40, 30, 20]);
        for (ts, want) in [(25u64, "v2"), (30, "v3"), (45, "v4")] {
            let row = s.get_at(&k, ts).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), want.as_bytes(), "ts {ts}");
        }
        // Without a floor (the default), compaction keeps only the head.
        let mut s2 = store_on(&vfs.crash_clone());
        s2.apply(&put_at("j", "x", 5), Lsn::new(2, 1));
        s2.apply(&put_at("j", "y", 6), Lsn::new(2, 2));
        s2.flush().unwrap();
        s2.compact_all().unwrap();
        assert_eq!(s2.get(&Key::from("j")).unwrap().unwrap().get(b"c").unwrap().older.len(), 0);
    }

    #[test]
    fn gc_floor_survives_restart_and_store_forks() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for (i, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            s.apply(&put_at("k", &format!("v{i}"), ts), Lsn::new(1, i));
            s.flush().unwrap();
        }
        s.set_gc_floor(25);
        s.compact_all().unwrap(); // prunes ts=10 and persists the floor
        assert_eq!(s.gc_floor(), 25);
        s.set_gc_floor(u64::MAX);
        assert_eq!(s.gc_floor(), 25, "an armed floor can never be disarmed");
        s.set_gc_floor(5);
        assert_eq!(s.gc_floor(), 25, "floors only move forward");

        // Restart: the floor must come back — the pruned history is gone,
        // so the store must keep refusing to claim it can serve below 25.
        let reopened = store_on(&vfs.crash_clone());
        assert_eq!(reopened.gc_floor(), 25, "floor persisted with the manifest");

        // Split children, an extracted child, a merged store, and a
        // snapshot importer all inherit it.
        let (left, right) = s
            .split(
                &Key::from("m"),
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        assert_eq!((left.gc_floor(), right.gc_floor()), (25, 25));
        let merged = RangeStore::merge(
            &left,
            &right,
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(merged.gc_floor(), 25);
        let extracted = s
            .extract(
                &Key::default(),
                None,
                StoreOptions { dir: "extracted".into(), ..Default::default() },
            )
            .unwrap();
        assert_eq!(extracted.gc_floor(), 25);
        let snap = s.export_snapshot().unwrap();
        assert_eq!(snap.gc_floor, 25);
        let mut joiner = RangeStore::recreate(
            Arc::new(MemVfs::new()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(joiner.gc_floor(), u64::MAX, "fresh store: unarmed");
        joiner.import_snapshot(&snap).unwrap();
        assert_eq!(joiner.gc_floor(), 25, "importer adopts the exporter's floor");
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        assert!(s.flush().unwrap().is_none());
        assert_eq!(s.table_count(), 0);
    }

    #[test]
    fn compaction_reduces_tables_and_preserves_data() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for batch in 0..5u64 {
            for i in 0..50u64 {
                let seq = batch * 50 + i + 1;
                s.apply(
                    &op::put(&format!("k{:03}", i), "c", &format!("b{batch}")),
                    Lsn::new(1, seq),
                );
            }
            s.flush().unwrap();
        }
        assert_eq!(s.table_count(), 5);
        assert!(s.maybe_compact().unwrap());
        assert!(s.table_count() < 5);
        // Latest batch value must win for every key.
        for i in 0..50u64 {
            let row = s.get(&Key::from(format!("k{:03}", i).as_str())).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"b4", "key k{i:03}");
        }
    }

    #[test]
    fn full_compaction_drops_tombstones() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("k", "c", "v"), Lsn::new(1, 1));
        s.flush().unwrap();
        s.apply(&op::delete("k", "c"), Lsn::new(1, 2));
        s.flush().unwrap();
        // Before GC the tombstone is still readable (raw).
        assert!(s.get(&Key::from("k")).unwrap().unwrap().get(b"c").unwrap().tombstone);
        s.compact_all().unwrap();
        // After a full merge the deleted column is gone entirely.
        assert!(s.get(&Key::from("k")).unwrap().is_none());
        assert_eq!(s.table_count(), 0, "everything was deleted");
    }

    #[test]
    fn partial_compaction_keeps_tombstones() {
        let vfs = MemVfs::new();
        let mut s = RangeStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { compaction_fanin: 2, ..Default::default() },
        )
        .unwrap();
        // Oldest table holds the value...
        s.apply(&op::put("k", "c", "v"), Lsn::new(1, 1));
        // ...plus enough bulk that it lands in a bigger size tier.
        for i in 0..200u64 {
            s.apply(&op::put(&format!("pad{i:05}"), "c", &"x".repeat(64)), Lsn::new(1, 2 + i));
        }
        s.flush().unwrap();
        // Two small tables: the tombstone and another small write.
        s.apply(&op::delete("k", "c"), Lsn::new(1, 300));
        s.flush().unwrap();
        s.apply(&op::put("other", "c", "y"), Lsn::new(1, 301));
        s.flush().unwrap();
        assert!(s.maybe_compact().unwrap());
        // The tombstone must survive the partial merge: the old value still
        // exists in the big table and would otherwise resurrect.
        let row = s.get(&Key::from("k")).unwrap().unwrap();
        assert!(row.get(b"c").unwrap().tombstone, "tombstone retained in partial merge");
        assert!(row.get_live(b"c").is_none());
    }

    #[test]
    fn rows_since_trims_to_new_columns() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("a", "c", "1"), Lsn::new(1, 1));
        s.apply(&op::put("b", "c", "2"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("c", "c", "3"), Lsn::new(1, 3));

        let since = s.rows_since(Lsn::new(1, 1)).unwrap();
        let keys: Vec<_> = since.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![Key::from("b"), Key::from("c")]);
        // Catch-up from zero ships everything.
        assert_eq!(s.rows_since(Lsn::ZERO).unwrap().len(), 3);
        // Catch-up from the max ships nothing.
        assert_eq!(s.rows_since(Lsn::new(1, 3)).unwrap().len(), 0);
    }

    #[test]
    fn ingest_fragment_feeds_reads_and_flush() {
        let vfs = MemVfs::new();
        let mut src = store_on(&vfs);
        src.apply(&op::put("k", "c", "v"), Lsn::new(2, 9));
        let frags = src.rows_since(Lsn::ZERO).unwrap();

        let vfs2 = MemVfs::new();
        let mut dst = store_on(&vfs2);
        for (k, frag) in &frags {
            dst.ingest_fragment(k, frag);
        }
        let row = dst.get(&Key::from("k")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().version, Lsn::new(2, 9).as_u64());
        assert_eq!(dst.flush().unwrap().unwrap(), Lsn::new(2, 9));
    }

    #[test]
    fn scan_is_merged_and_bounded() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("a", "c", "1"), Lsn::new(1, 1));
        s.apply(&op::put("b", "c", "2"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("b", "c", "2new"), Lsn::new(1, 3));
        s.apply(&op::put("d", "c", "4"), Lsn::new(1, 4));
        let got = s.scan(&Key::from("a"), Some(&Key::from("c"))).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].1.get_live(b"c").unwrap().value.as_ref(), b"2new");
    }

    #[test]
    fn split_partitions_memtable_and_tables_by_key() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        // One table entirely left of the split, one straddling it, plus
        // live memtable rows on both sides.
        s.apply(&op::put("a1", "c", "t1"), Lsn::new(1, 1));
        s.apply(&op::put("a2", "c", "t1"), Lsn::new(1, 2));
        s.flush().unwrap();
        s.apply(&op::put("a3", "c", "t2"), Lsn::new(1, 3));
        s.apply(&op::put("z1", "c", "t2"), Lsn::new(1, 4));
        s.flush().unwrap();
        s.apply(&op::put("a2", "c", "mem"), Lsn::new(1, 5)); // newer version
        s.apply(&op::put("z2", "c", "mem"), Lsn::new(1, 6));

        let at = Key::from("m");
        let (left, right) = s
            .split(
                &at,
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();

        // Every key reads identically from the child owning its side.
        for key in ["a1", "a2", "a3", "z1", "z2"] {
            let k = Key::from(key);
            let child = if k < at { &left } else { &right };
            assert_eq!(child.get(&k).unwrap(), s.get(&k).unwrap(), "child read differs for {key}");
        }
        // And nothing crossed the boundary.
        assert!(left.get(&Key::from("z1")).unwrap().is_none());
        assert!(right.get(&Key::from("a1")).unwrap().is_none());
        // The newest version won through the memtable clone.
        let row = left.get(&Key::from("a2")).unwrap().unwrap();
        assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), b"mem");
        // The parent is untouched.
        assert_eq!(s.get(&Key::from("a1")).unwrap().unwrap().len(), 1);
    }

    #[test]
    fn split_children_survive_restart() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..40u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        s.apply(&op::put("k99", "c", "late"), Lsn::new(1, 100));
        let (mut left, mut right) = s
            .split(
                &Key::from("k20"),
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        left.flush().unwrap();
        right.flush().unwrap();

        // Crash: only synced state survives; both children reopen intact.
        let image = vfs.crash_clone();
        let left2 = RangeStore::open(
            Arc::new(image.clone()),
            StoreOptions { dir: "left".into(), ..Default::default() },
        )
        .unwrap();
        let right2 = RangeStore::open(
            Arc::new(image),
            StoreOptions { dir: "right".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            left2.get(&Key::from("k07")).unwrap().unwrap().get_live(b"c").unwrap().value.as_ref(),
            b"v7"
        );
        assert!(left2.get(&Key::from("k20")).unwrap().is_none(), "boundary key went right");
        assert_eq!(
            right2.get(&Key::from("k99")).unwrap().unwrap().get_live(b"c").unwrap().value.as_ref(),
            b"late"
        );
    }

    #[test]
    fn merge_rejoins_split_children_losslessly() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..30u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
            if i % 7 == 0 {
                s.flush().unwrap();
            }
        }
        s.apply(&op::delete("k05", "c"), Lsn::new(1, 100));
        let at = Key::from("k15");
        let (left, right) = s
            .split(
                &at,
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        let merged = RangeStore::merge(
            &left,
            &right,
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        for i in 0..30u64 {
            let k = Key::from(format!("k{i:02}").as_str());
            assert_eq!(merged.get(&k).unwrap(), s.get(&k).unwrap(), "key k{i:02}");
        }
        assert_eq!(
            merged.scan(&Key::default(), None).unwrap(),
            s.scan(&Key::default(), None).unwrap(),
            "merged scan equals the original"
        );
    }

    #[test]
    fn merged_store_survives_restart() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        for i in 0..20u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(1, i + 1));
        }
        s.flush().unwrap();
        let (left, right) = s
            .split(
                &Key::from("k10"),
                StoreOptions { dir: "left".into(), ..Default::default() },
                StoreOptions { dir: "right".into(), ..Default::default() },
            )
            .unwrap();
        let mut merged = RangeStore::merge(
            &left,
            &right,
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        merged.flush().unwrap();
        let merged2 = RangeStore::open(
            Arc::new(vfs.crash_clone()),
            StoreOptions { dir: "merged".into(), ..Default::default() },
        )
        .unwrap();
        for i in 0..20u64 {
            let k = Key::from(format!("k{i:02}").as_str());
            assert_eq!(merged2.get(&k).unwrap(), s.get(&k).unwrap());
        }
    }

    #[test]
    fn snapshot_export_import_roundtrip() {
        let vfs = MemVfs::new();
        let mut src = store_on(&vfs);
        for i in 0..25u64 {
            src.apply(&op::put(&format!("k{i:02}"), "c", &format!("v{i}")), Lsn::new(2, i + 1));
            if i == 10 {
                src.flush().unwrap();
            }
        }
        src.apply(&op::delete("k03", "c"), Lsn::new(2, 90));
        let snap = src.export_snapshot().unwrap();
        assert_eq!(snap.max_lsn, Lsn::new(2, 90));
        assert!(snap.approx_size() > 0);

        // Import on a different node's (fresh) filesystem.
        let vfs2 = MemVfs::new();
        let mut dst = RangeStore::recreate(
            Arc::new(vfs2.clone()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        dst.import_snapshot(&snap).unwrap();
        for i in 0..25u64 {
            let k = Key::from(format!("k{i:02}").as_str());
            assert_eq!(dst.get(&k).unwrap(), src.get(&k).unwrap(), "key k{i:02}");
        }
        assert_eq!(dst.max_lsn(), src.max_lsn());

        // The imported tables are durable; memtable rows need a flush.
        dst.flush().unwrap();
        let dst2 = RangeStore::open(
            Arc::new(vfs2.crash_clone()),
            StoreOptions { dir: "joined".into(), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            dst2.scan(&Key::default(), None).unwrap(),
            src.scan(&Key::default(), None).unwrap()
        );
    }

    #[test]
    fn recreate_discards_stale_state() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        s.apply(&op::put("old", "c", "stale"), Lsn::new(1, 1));
        s.flush().unwrap();
        let fresh = RangeStore::recreate(Arc::new(vfs.clone()), StoreOptions::default()).unwrap();
        assert!(fresh.get(&Key::from("old")).unwrap().is_none(), "leftovers discarded");
        assert_eq!(fresh.table_count(), 0);
    }

    #[test]
    fn size_and_mid_key_statistics() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        assert_eq!(s.approx_total_bytes(), 0);
        assert!(s.mid_key().is_none());
        for i in 0..40u64 {
            s.apply(&op::put(&format!("k{i:02}"), "c", &"x".repeat(32)), Lsn::new(1, i + 1));
        }
        let mem_only = s.approx_total_bytes();
        assert!(mem_only > 0);
        s.flush().unwrap();
        assert!(s.approx_total_bytes() > 0, "flushed bytes counted via file sizes");
        let mid = s.mid_key().unwrap();
        // The midpoint splits the keys roughly in half.
        let below = (0..40u64).filter(|i| Key::from(format!("k{i:02}").as_str()) < mid).count();
        assert!((10..=30).contains(&below), "mid key is central: {below} below");
    }

    #[test]
    fn max_lsn_spans_memtable_and_tables() {
        let vfs = MemVfs::new();
        let mut s = store_on(&vfs);
        assert_eq!(s.max_lsn(), Lsn::ZERO);
        s.apply(&op::put("a", "c", "1"), Lsn::new(1, 5));
        s.flush().unwrap();
        s.apply(&op::put("b", "c", "2"), Lsn::new(1, 3));
        assert_eq!(s.max_lsn(), Lsn::new(1, 5));
    }
}
