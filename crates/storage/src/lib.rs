//! LSM storage engine for the Spinnaker datastore (paper §4.1).
//!
//! Committed writes land in a [`Memtable`], are periodically flushed to
//! immutable, indexed, bloom-filtered [`sstable::Table`]s tagged with the
//! min/max LSN of the writes they contain, and smaller tables are merged
//! into larger ones in the background ([`RangeStore::maybe_compact`]).
//! The design follows Bigtable's SSTables as the paper describes.

#![warn(missing_docs)]

pub mod bloom;
pub mod memtable;
pub mod merge;
pub mod sstable;
pub mod store;

pub use bloom::Bloom;
pub use memtable::Memtable;
pub use merge::{vec_stream, MergeIter, RowStream};
pub use sstable::{Table, TableBuilder, TableMeta, TableOptions};
pub use store::{RangeStore, ScanPage, StoreOptions, StoreSnapshot};
