//! LSM storage engine for the Spinnaker datastore (paper §4.1).
//!
//! Committed writes land in a [`Memtable`], are periodically flushed to
//! immutable, indexed, bloom-filtered [`sstable::Table`]s tagged with the
//! min/max LSN of the writes they contain. Tables are organised as a
//! **leveled LSM**: an L0 flush tier (overlapping, newest first) feeds
//! size-ratio levels L1..Ln whose tables are non-overlapping within a
//! level, compacted downward by [`RangeStore::maybe_compact`]. Reads are
//! served through per-level bloom filters and a node-wide [`BlockCache`]
//! of decoded data blocks. The design follows Bigtable's SSTables as the
//! paper describes.

#![warn(missing_docs)]

pub mod bloom;
pub mod cache;
pub mod memtable;
pub mod merge;
pub mod sstable;
pub mod store;

pub use bloom::Bloom;
pub use cache::{BlockCache, CacheStats, CachedBlock, SharedBlockCache};
pub use memtable::Memtable;
pub use merge::{vec_stream, MergeIter, RowStream};
pub use sstable::{Table, TableBuilder, TableCtx, TableMeta, TableOptions};
pub use store::{RangeStore, ScanPage, StoreOptions, StoreSnapshot, StoreStats};
