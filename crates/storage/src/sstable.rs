//! SSTables: immutable, sorted, indexed on-disk runs (paper §4.1, after
//! Bigtable's design).
//!
//! Layout:
//!
//! ```text
//! [data block | crc32c]*        entries: (key, row), ~4 KiB per block
//! [index block | crc32c]        (first_key, offset, len) per data block
//! [bloom block | crc32c]        bloom filter over row keys
//! [footer | crc32c]             key range, LSN range, row count, offsets
//! [footer_offset u64][magic u64]  fixed 16-byte trailer
//! ```
//!
//! Every SSTable is tagged with the **min and max LSN** of the writes it
//! contains (§6.1): when a catch-up request cannot be served from the
//! leader's log because it rolled over, the appropriate SSTables are
//! located by LSN range and their rows shipped to the follower.

use std::sync::Arc;

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::vfs::SharedVfs;
use spinnaker_common::{Error, Key, Lsn, Result, Row, Timestamp};

use crate::bloom::Bloom;
use crate::cache::{CacheMetrics, CachedBlock, SharedBlockCache};

/// `"SPINSST1"` little-endian.
const MAGIC: u64 = 0x3154_5353_4e49_5053;

/// Ambient context a table is opened under: the node-wide block cache
/// (if any) and the owning store's cache observables. Cloned into every
/// table a store opens, so hits and misses stay attributable per range
/// while the cached bytes are shared node-wide.
#[derive(Clone, Default)]
pub struct TableCtx {
    /// Shared cache of decoded data blocks; `None` = read through.
    pub cache: Option<SharedBlockCache>,
    /// Per-store hit/miss/read counters.
    pub metrics: Arc<CacheMetrics>,
}

impl std::fmt::Debug for TableCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCtx").field("cached", &self.cache.is_some()).finish()
    }
}

/// Build-time options.
#[derive(Clone, Debug)]
pub struct TableOptions {
    /// Target uncompressed data-block size.
    pub block_bytes: usize,
    /// Bloom filter budget.
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> TableOptions {
        TableOptions { block_bytes: 4096, bloom_bits_per_key: 10 }
    }
}

/// Summary of a finished table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableMeta {
    /// Smallest row key.
    pub min_key: Key,
    /// Largest row key.
    pub max_key: Key,
    /// Smallest column version (packed LSN) stored.
    pub min_lsn: Lsn,
    /// Largest column version (packed LSN) stored.
    pub max_lsn: Lsn,
    /// Largest commit timestamp stored (over every version chain entry):
    /// the table's contribution to the store's snapshot-read safe point.
    pub max_ts: Timestamp,
    /// Number of rows.
    pub row_count: u64,
    /// File size in bytes.
    pub file_bytes: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct IndexEntry {
    first_key: Key,
    offset: u64,
    len: u32,
}

fn row_lsn_bounds(row: &Row) -> (Lsn, Lsn, Timestamp) {
    let mut lo = Lsn::MAX;
    let mut hi = Lsn::ZERO;
    let mut ts = 0;
    for cv in row.columns.values() {
        for v in cv.versions() {
            let lsn = Lsn::from_u64(v.version);
            lo = lo.min(lsn);
            hi = hi.max(lsn);
            ts = ts.max(v.timestamp);
        }
    }
    (lo, hi, ts)
}

/// Streaming SSTable writer. Keys must be added in strictly ascending
/// order; rows carry their column versions (packed LSNs).
pub struct TableBuilder {
    vfs: SharedVfs,
    path: String,
    opts: TableOptions,
    ctx: TableCtx,
    file: Box<dyn spinnaker_common::vfs::VfsFile>,
    offset: u64,
    block: Vec<u8>,
    block_first_key: Option<Key>,
    index: Vec<IndexEntry>,
    keys: Vec<Key>,
    min_key: Option<Key>,
    max_key: Option<Key>,
    min_lsn: Lsn,
    max_lsn: Lsn,
    max_ts: Timestamp,
    row_count: u64,
}

impl TableBuilder {
    /// Start building at `path` (no block cache attached).
    pub fn new(vfs: SharedVfs, path: &str, opts: TableOptions) -> Result<TableBuilder> {
        TableBuilder::new_with(vfs, path, opts, TableCtx::default())
    }

    /// Start building at `path`; the finished table opens under `ctx`.
    pub fn new_with(
        vfs: SharedVfs,
        path: &str,
        opts: TableOptions,
        ctx: TableCtx,
    ) -> Result<TableBuilder> {
        let file = vfs.create(path)?;
        Ok(TableBuilder {
            vfs,
            path: path.to_string(),
            opts,
            ctx,
            file,
            offset: 0,
            block: Vec::new(),
            block_first_key: None,
            index: Vec::new(),
            keys: Vec::new(),
            min_key: None,
            max_key: None,
            min_lsn: Lsn::MAX,
            max_lsn: Lsn::ZERO,
            max_ts: 0,
            row_count: 0,
        })
    }

    /// Append one row. Empty rows are skipped.
    pub fn add(&mut self, key: &Key, row: &Row) -> Result<()> {
        if row.is_empty() {
            return Ok(());
        }
        if let Some(last) = &self.max_key {
            if key <= last {
                return Err(Error::InvalidArgument(format!(
                    "keys out of order: {key:?} after {last:?}"
                )));
            }
        }
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.clone());
        }
        key.encode(&mut self.block);
        row.encode(&mut self.block);
        let (lo, hi, ts) = row_lsn_bounds(row);
        self.min_lsn = self.min_lsn.min(lo);
        self.max_lsn = self.max_lsn.max(hi);
        self.max_ts = self.max_ts.max(ts);
        if self.min_key.is_none() {
            self.min_key = Some(key.clone());
        }
        self.max_key = Some(key.clone());
        self.keys.push(key.clone());
        self.row_count += 1;
        if self.block.len() >= self.opts.block_bytes {
            self.flush_block()?;
        }
        Ok(())
    }

    fn write_chunk(&mut self, body: &[u8]) -> Result<(u64, u32)> {
        let crc = spinnaker_common::crc32c::masked(spinnaker_common::crc32c::crc32c(body));
        let start = self.offset;
        self.file.append(body)?;
        let mut tail = Vec::with_capacity(4);
        codec::put_u32(&mut tail, crc);
        self.file.append(&tail)?;
        self.offset += body.len() as u64 + 4;
        Ok((start, body.len() as u32 + 4))
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let body = std::mem::take(&mut self.block);
        let Some(first_key) = self.block_first_key.take() else {
            return Err(Error::InvalidArgument("block buffer without a first key".into()));
        };
        let (offset, len) = self.write_chunk(&body)?;
        self.index.push(IndexEntry { first_key, offset, len });
        Ok(())
    }

    /// Finish: write index, bloom, footer, trailer; fsync; return the
    /// opened [`Table`].
    pub fn finish(mut self) -> Result<Table> {
        if self.row_count == 0 {
            return Err(Error::InvalidArgument("cannot build an empty SSTable".into()));
        }
        self.flush_block()?;

        let mut index_body = Vec::new();
        codec::put_varint(&mut index_body, self.index.len() as u64);
        for e in &self.index {
            e.first_key.encode(&mut index_body);
            codec::put_u64(&mut index_body, e.offset);
            codec::put_u32(&mut index_body, e.len);
        }
        let (index_off, index_len) = self.write_chunk(&index_body)?;

        let bloom = Bloom::build(
            self.keys.iter().map(|k| k.as_bytes()),
            self.keys.len(),
            self.opts.bloom_bits_per_key,
        );
        let (bloom_off, bloom_len) = self.write_chunk(&bloom.encode_to_vec())?;

        let (Some(min_key), Some(max_key)) = (self.min_key.as_ref(), self.max_key.as_ref()) else {
            return Err(Error::InvalidArgument("non-empty table is missing key bounds".into()));
        };
        let mut footer = Vec::new();
        min_key.encode(&mut footer);
        max_key.encode(&mut footer);
        self.min_lsn.encode(&mut footer);
        self.max_lsn.encode(&mut footer);
        codec::put_u64(&mut footer, self.max_ts);
        codec::put_u64(&mut footer, self.row_count);
        codec::put_u64(&mut footer, index_off);
        codec::put_u32(&mut footer, index_len);
        codec::put_u64(&mut footer, bloom_off);
        codec::put_u32(&mut footer, bloom_len);
        let (footer_off, _) = self.write_chunk(&footer)?;

        let mut trailer = Vec::with_capacity(16);
        codec::put_u64(&mut trailer, footer_off);
        codec::put_u64(&mut trailer, MAGIC);
        self.file.append(&trailer)?;
        self.offset += 16;
        self.file.sync()?;
        drop(self.file);

        Table::open_with(self.vfs, &self.path, self.ctx)
    }
}

/// An open, immutable SSTable.
pub struct Table {
    vfs: SharedVfs,
    path: String,
    meta: TableMeta,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    ctx: TableCtx,
    /// Cache-unique id, assigned at open when a cache is attached. Ids
    /// are never reused, so stale entries can never alias a new table.
    cache_id: Option<u64>,
}

impl Table {
    /// Open and validate an existing table file (no block cache).
    pub fn open(vfs: SharedVfs, path: &str) -> Result<Table> {
        Table::open_with(vfs, path, TableCtx::default())
    }

    /// Open and validate an existing table file under `ctx`.
    pub fn open_with(vfs: SharedVfs, path: &str, ctx: TableCtx) -> Result<Table> {
        let file = vfs.open(path)?;
        let file_bytes = file.len()?;
        if file_bytes < 16 {
            return Err(Error::Corruption(format!("{path}: too small for a trailer")));
        }
        let mut trailer = [0u8; 16];
        file.read_exact_at(file_bytes - 16, &mut trailer)?;
        let mut cur: &[u8] = &trailer;
        let footer_off = codec::get_u64(&mut cur)?;
        let magic = codec::get_u64(&mut cur)?;
        if magic != MAGIC {
            return Err(Error::Corruption(format!("{path}: bad magic")));
        }
        // A bit-flipped trailer can point the footer anywhere; checked
        // arithmetic turns that into a corruption error instead of an
        // underflow (or a huge read below).
        let footer_len = (file_bytes - 16).checked_sub(footer_off).ok_or_else(|| {
            Error::Corruption(format!("{path}: footer offset {footer_off} past the trailer"))
        })?;
        let footer_len = u32::try_from(footer_len).map_err(|_| {
            Error::Corruption(format!("{path}: implausible footer length {footer_len}"))
        })?;
        let footer = read_chunk(file.as_ref(), footer_off, footer_len, path)?;
        let mut cur: &[u8] = &footer;
        let min_key = Key::decode(&mut cur)?;
        let max_key = Key::decode(&mut cur)?;
        let min_lsn = Lsn::decode(&mut cur)?;
        let max_lsn = Lsn::decode(&mut cur)?;
        let max_ts = codec::get_u64(&mut cur)?;
        let row_count = codec::get_u64(&mut cur)?;
        let index_off = codec::get_u64(&mut cur)?;
        let index_len = codec::get_u32(&mut cur)?;
        let bloom_off = codec::get_u64(&mut cur)?;
        let bloom_len = codec::get_u32(&mut cur)?;

        let index_body = read_chunk(file.as_ref(), index_off, index_len, path)?;
        let mut cur: &[u8] = &index_body;
        // Each entry is at least a 1-byte key (plus its length byte), an
        // 8-byte offset, and a 4-byte length.
        let n = codec::get_varint_len(&mut cur, "sstable index entries", 14)?;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let first_key = Key::decode(&mut cur)?;
            let offset = codec::get_u64(&mut cur)?;
            let len = codec::get_u32(&mut cur)?;
            index.push(IndexEntry { first_key, offset, len });
        }

        let bloom_body = read_chunk(file.as_ref(), bloom_off, bloom_len, path)?;
        let bloom = Bloom::decode(&mut bloom_body.as_slice())?;

        let cache_id = ctx.cache.as_ref().map(|c| c.register_table());
        Ok(Table {
            vfs,
            path: path.to_string(),
            meta: TableMeta { min_key, max_key, min_lsn, max_lsn, max_ts, row_count, file_bytes },
            index,
            bloom,
            ctx,
            cache_id,
        })
    }

    /// Table metadata (key range, LSN range, size).
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// File path within the VFS.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Whether `key` falls inside this table's `[min_key, max_key]` span.
    pub fn span_contains(&self, key: &Key) -> bool {
        key >= &self.meta.min_key && key <= &self.meta.max_key
    }

    /// Probe the bloom filter alone (no IO). False positives possible,
    /// false negatives impossible. Callers that track bloom efficacy
    /// pair this with [`Table::get_unfiltered`].
    pub fn bloom_may_contain(&self, key: &Key) -> bool {
        self.bloom.may_contain(key.as_bytes())
    }

    /// Point lookup: the stored fragment of `key`'s row.
    pub fn get(&self, key: &Key) -> Result<Option<Row>> {
        if !self.span_contains(key) {
            return Ok(None);
        }
        if !self.bloom.may_contain(key.as_bytes()) {
            return Ok(None);
        }
        self.get_unfiltered(key)
    }

    /// Point lookup **without** the span/bloom pre-checks — the block
    /// index is consulted directly. Callers (the store's read path) do
    /// the span and bloom checks themselves so they can count skips and
    /// bloom true/false positives.
    pub fn get_unfiltered(&self, key: &Key) -> Result<Option<Row>> {
        // Last block whose first key <= key.
        let block_idx = match self.index.partition_point(|e| e.first_key <= *key) {
            0 => return Ok(None),
            n => n - 1,
        };
        let entries = self.read_block(block_idx)?;
        Ok(entries.iter().find(|(k, _)| k == key).map(|(_, row)| row.clone()))
    }

    /// Read (or fetch from the block cache) the decoded data block at
    /// index position `idx`.
    fn read_block(&self, idx: usize) -> Result<CachedBlock> {
        let e = &self.index[idx];
        if let (Some(cache), Some(id)) = (self.ctx.cache.as_ref(), self.cache_id) {
            if let Some(rows) = cache.get(id, e.offset) {
                self.ctx.metrics.hit();
                return Ok(rows);
            }
            self.ctx.metrics.miss();
        }
        self.ctx.metrics.block_read();
        let file = self.vfs.open(&self.path)?;
        let body = read_chunk(file.as_ref(), e.offset, e.len, &self.path)?;
        let mut cur: &[u8] = &body;
        let mut out = Vec::new();
        while !cur.is_empty() {
            let key = Key::decode(&mut cur)?;
            let row = Row::decode(&mut cur)?;
            out.push((key, row));
        }
        let rows: CachedBlock = Arc::new(out);
        if let (Some(cache), Some(id)) = (self.ctx.cache.as_ref(), self.cache_id) {
            // Charge the on-disk chunk size: it is what a miss costs.
            cache.insert(id, e.offset, rows.clone(), u64::from(e.len));
        }
        Ok(rows)
    }

    /// Iterate every row in key order.
    pub fn iter(&self) -> TableIter<'_> {
        TableIter { table: self, block: 0, entries: Arc::new(Vec::new()), pos: 0 }
    }

    /// Iterate rows in key order starting at the first key `>= start`,
    /// **seeking** via the block index: only the block containing `start`
    /// and those after it are ever read or decoded. This is what keeps a
    /// scan page's cost proportional to the page, not to the table prefix
    /// before the cursor.
    pub fn iter_from(&self, start: &Key) -> TableIter<'_> {
        // First candidate block: the last one whose first key <= start
        // (an earlier block cannot contain keys >= start... its keys are
        // all < its successor's first key <= start — except the block
        // *at* the partition point, which may straddle `start`).
        let block = match self.index.partition_point(|e| e.first_key <= *start) {
            0 => 0,
            n => n - 1,
        };
        let mut it = TableIter { table: self, block, entries: Arc::new(Vec::new()), pos: 0 };
        it.skip_below(start);
        it
    }

    /// Collect rows within `[start, end)` (end `None` = unbounded).
    pub fn scan(&self, start: &Key, end: Option<&Key>) -> Result<Vec<(Key, Row)>> {
        let mut out = Vec::new();
        for item in self.iter_from(start) {
            let (k, row) = item?;
            if let Some(end) = end {
                if &k >= end {
                    break;
                }
            }
            out.push((k, row));
        }
        Ok(out)
    }

    /// Delete the backing file, evicting any cached blocks first so a
    /// retired table's data can never be served again.
    pub fn delete(self) -> Result<()> {
        if let (Some(cache), Some(id)) = (self.ctx.cache.as_ref(), self.cache_id) {
            cache.evict_table(id);
        }
        self.vfs.delete(&self.path)
    }

    /// The id this table is registered under in the block cache
    /// (`None` when opened without a cache). Test/debug introspection.
    pub fn cache_id(&self) -> Option<u64> {
        self.cache_id
    }
}

fn read_chunk(
    file: &dyn spinnaker_common::vfs::VfsFile,
    offset: u64,
    len: u32,
    path: &str,
) -> Result<Vec<u8>> {
    if len < 4 {
        return Err(Error::Corruption(format!("{path}: chunk shorter than its checksum")));
    }
    // Bound the allocation by the actual file size before trusting a
    // length that may come from a corrupt footer.
    let file_bytes = file.len()?;
    if u64::from(len) > file_bytes || offset > file_bytes - u64::from(len) {
        return Err(Error::Corruption(format!(
            "{path}: chunk [{offset}, +{len}) outside the {file_bytes}-byte file"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    file.read_exact_at(offset, &mut buf)?;
    let body_len = len as usize - 4;
    let stored = match buf[body_len..].try_into() {
        Ok(tail) => u32::from_le_bytes(tail),
        Err(_) => return Err(Error::Corruption(format!("{path}: chunk tail truncated"))),
    };
    let actual =
        spinnaker_common::crc32c::masked(spinnaker_common::crc32c::crc32c(&buf[..body_len]));
    if stored != actual {
        return Err(Error::Corruption(format!("{path}: chunk checksum mismatch at {offset}")));
    }
    buf.truncate(body_len);
    Ok(buf)
}

/// Iterator over rows of a table in key order, decoding one block at a
/// time (so its memory footprint is one block, regardless of table size).
pub struct TableIter<'a> {
    table: &'a Table,
    block: usize,
    entries: CachedBlock,
    pos: usize,
}

impl TableIter<'_> {
    /// Skip entries below `start` inside the current candidate block
    /// (the one [`Table::iter_from`] seeked to). Later blocks begin at
    /// or after `start` by construction, so one positioning suffices.
    fn skip_below(&mut self, start: &Key) {
        if self.block >= self.table.index.len() {
            return;
        }
        if let Ok(entries) = self.table.read_block(self.block) {
            self.entries = entries;
            self.pos = self.entries.partition_point(|(k, _)| k < start);
            self.block += 1;
        }
        // On a read error, leave the iterator pointing at the block so
        // the first `next()` surfaces the corruption.
    }
}

impl Iterator for TableIter<'_> {
    type Item = Result<(Key, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.entries.len() {
                let item = self.entries[self.pos].clone();
                self.pos += 1;
                return Some(Ok(item));
            }
            if self.block >= self.table.index.len() {
                return None;
            }
            match self.table.read_block(self.block) {
                Ok(entries) => {
                    self.entries = entries;
                    self.pos = 0;
                    self.block += 1;
                }
                Err(e) => {
                    self.block = self.table.index.len();
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spinnaker_common::vfs::MemVfs;
    use spinnaker_common::{op, ColumnValue};

    use super::*;

    fn build(n: usize) -> (MemVfs, Table) {
        let vfs = MemVfs::new();
        let shared: SharedVfs = Arc::new(vfs.clone());
        let mut b = TableBuilder::new(shared, "sst/t1", TableOptions::default()).unwrap();
        for i in 0..n {
            let key = Key::from(format!("key{i:06}").into_bytes());
            let mut row = Row::new();
            op::put("x", "c", &format!("value-{i}"))
                .apply_to_row(&mut row, Lsn::new(1, i as u64 + 1));
            b.add(&key, &row).unwrap();
        }
        let t = b.finish().unwrap();
        (vfs, t)
    }

    #[test]
    fn point_lookups_hit_and_miss() {
        let (_vfs, t) = build(1000);
        for i in [0usize, 1, 499, 998, 999] {
            let key = Key::from(format!("key{i:06}").into_bytes());
            let row = t.get(&key).unwrap().unwrap();
            assert_eq!(row.get_live(b"c").unwrap().value.as_ref(), format!("value-{i}").as_bytes());
        }
        assert!(t.get(&Key::from("absent")).unwrap().is_none());
        assert!(t.get(&Key::from("key9999999")).unwrap().is_none());
        assert!(t.get(&Key::from("")).unwrap().is_none());
    }

    #[test]
    fn meta_records_key_and_lsn_ranges() {
        let (_vfs, t) = build(100);
        let m = t.meta();
        assert_eq!(m.min_key, Key::from("key000000"));
        assert_eq!(m.max_key, Key::from("key000099"));
        assert_eq!(m.min_lsn, Lsn::new(1, 1));
        assert_eq!(m.max_lsn, Lsn::new(1, 100));
        assert_eq!(m.row_count, 100);
    }

    #[test]
    fn iter_returns_all_rows_in_order() {
        let (_vfs, t) = build(500);
        let rows: Vec<_> = t.iter().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 500);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn iter_from_seeks_to_the_cursor() {
        let (_vfs, t) = build(1000);
        // Mid-table seek: first yielded key is exactly the cursor.
        let rows: Vec<_> = t.iter_from(&Key::from("key000500")).map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0].0, Key::from("key000500"));
        // A cursor between keys lands on the next one.
        let rows: Vec<_> = t.iter_from(&Key::from("key000500a")).map(|r| r.unwrap()).collect();
        assert_eq!(rows[0].0, Key::from("key000501"));
        // Before the table: everything; past the end: nothing.
        assert_eq!(t.iter_from(&Key::from("a")).count(), 1000);
        assert_eq!(t.iter_from(&Key::from("z")).count(), 0);
        // Equivalent to filtering the full iterator, for every block edge.
        for i in [0usize, 1, 37, 499, 998, 999] {
            let start = Key::from(format!("key{i:06}").into_bytes());
            let seeked: Vec<_> = t.iter_from(&start).map(|r| r.unwrap().0).collect();
            let filtered: Vec<_> = t.iter().map(|r| r.unwrap().0).filter(|k| k >= &start).collect();
            assert_eq!(seeked, filtered, "seek at {i}");
        }
    }

    #[test]
    fn meta_records_max_commit_timestamp() {
        let vfs: SharedVfs = Arc::new(MemVfs::new());
        let mut b = TableBuilder::new(vfs, "sst/ts", TableOptions::default()).unwrap();
        for (i, ts) in [(1u64, 50u64), (2, 90), (3, 70)] {
            let key = Key::from(format!("k{i}").as_str());
            let mut row = Row::new();
            spinnaker_common::WriteOp::put(
                key.clone(),
                bytes::Bytes::from_static(b"c"),
                bytes::Bytes::from_static(b"v"),
                ts,
            )
            .apply_to_row(&mut row, Lsn::new(1, i));
            b.add(&key, &row).unwrap();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.meta().max_ts, 90, "footer records the highest commit timestamp");
    }

    #[test]
    fn scan_respects_bounds() {
        let (_vfs, t) = build(100);
        let got = t.scan(&Key::from("key000010"), Some(&Key::from("key000013"))).unwrap();
        let keys: Vec<_> = got.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![Key::from("key000010"), Key::from("key000011"), Key::from("key000012")]
        );
    }

    #[test]
    fn out_of_order_keys_rejected() {
        let vfs: SharedVfs = Arc::new(MemVfs::new());
        let mut b = TableBuilder::new(vfs, "sst/bad", TableOptions::default()).unwrap();
        let mut row = Row::new();
        row.set(bytes::Bytes::from_static(b"c"), ColumnValue::live("v".into(), Lsn::new(1, 1), 0));
        b.add(&Key::from("b"), &row).unwrap();
        assert!(b.add(&Key::from("a"), &row).is_err());
        assert!(b.add(&Key::from("b"), &row).is_err(), "duplicates rejected too");
    }

    #[test]
    fn empty_table_rejected() {
        let vfs: SharedVfs = Arc::new(MemVfs::new());
        let b = TableBuilder::new(vfs, "sst/empty", TableOptions::default()).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn corruption_detected_on_open_and_read() {
        let (vfs, t) = build(200);
        let path = t.path().to_string();
        drop(t);
        // Flip a byte in the middle of the file (some data block).
        let data = vfs.read_all(&path).unwrap();
        use spinnaker_common::vfs::Vfs;
        let mut f = vfs.create(&path).unwrap();
        let mut corrupted = data.clone();
        corrupted[data.len() / 3] ^= 0xff;
        f.append(&corrupted).unwrap();
        f.sync().unwrap();
        let shared: SharedVfs = Arc::new(vfs.clone());
        // Open may succeed (footer intact) but reads must detect corruption.
        match Table::open(shared, &path) {
            Ok(t) => {
                let err = t.iter().collect::<Result<Vec<_>>>();
                assert!(err.is_err(), "corrupted block must fail the scan");
            }
            Err(e) => assert!(e.is_corruption()),
        }
    }

    #[test]
    fn survives_crash_after_finish() {
        let (vfs, t) = build(50);
        let path = t.path().to_string();
        drop(t);
        let after = vfs.crash_clone();
        let t = Table::open(Arc::new(after), &path).unwrap();
        assert_eq!(t.meta().row_count, 50);
    }

    #[test]
    fn single_row_table() {
        let vfs: SharedVfs = Arc::new(MemVfs::new());
        let mut b = TableBuilder::new(vfs, "sst/one", TableOptions::default()).unwrap();
        let mut row = Row::new();
        op::put("x", "c", "v").apply_to_row(&mut row, Lsn::new(2, 7));
        b.add(&Key::from("only"), &row).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.meta().min_lsn, Lsn::new(2, 7));
        assert_eq!(t.meta().max_lsn, Lsn::new(2, 7));
        assert_eq!(t.get(&Key::from("only")).unwrap().unwrap(), row);
    }
}
