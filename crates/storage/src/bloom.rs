//! Bloom filter over row keys, one per SSTable.
//!
//! Double hashing (Kirsch–Mitzenmacher): `k` probe positions derived from
//! two independent 64-bit hashes of the key. Sized for a configurable
//! bits-per-key budget (10 bits/key ≈ 1% false-positive rate).

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::{Error, Result};

/// A serializable Bloom filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    num_bits: u64,
    k: u32,
}

/// FNV-1a 64-bit, seeded — cheap, decent dispersion for double hashing.
fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Bloom {
    /// Build a filter for `keys` with the given bits-per-key budget.
    pub fn build<'a>(keys: impl Iterator<Item = &'a [u8]>, n: usize, bits_per_key: usize) -> Bloom {
        let num_bits = ((n.max(1) * bits_per_key) as u64).max(64);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bloom = Bloom { bits: vec![0; num_bits.div_ceil(64) as usize], num_bits, k };
        for key in keys {
            bloom.insert(key);
        }
        bloom
    }

    fn insert(&mut self, key: &[u8]) {
        let h1 = fnv1a(0x51ed_270b, key);
        let h2 = fnv1a(0xb492_b66f, key) | 1;
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Whether `key` may be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = fnv1a(0x51ed_270b, key);
        let h2 = fnv1a(0xb492_b66f, key) | 1;
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialized size in bytes (approximate).
    pub fn approx_bytes(&self) -> usize {
        self.bits.len() * 8 + 16
    }
}

impl Encode for Bloom {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.num_bits);
        codec::put_u32(buf, self.k);
        codec::put_varint(buf, self.bits.len() as u64);
        for w in &self.bits {
            codec::put_u64(buf, *w);
        }
    }
}

impl Decode for Bloom {
    fn decode(buf: &mut &[u8]) -> Result<Bloom> {
        let num_bits = codec::get_u64(buf)?;
        let k = codec::get_u32(buf)?;
        // Each filter word is 8 bytes; bounding the count by the input
        // keeps a corrupt header from driving a huge allocation.
        let n = codec::get_varint_len(buf, "bloom filter words", 8)?;
        if k == 0 || k > 64 || num_bits == 0 || n != (num_bits.div_ceil(64) as usize) {
            return Err(Error::Corruption("implausible bloom header".into()));
        }
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            bits.push(codec::get_u64(buf)?);
        }
        Ok(Bloom { bits, num_bits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user{i:06}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        for k in &ks {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ks = keys(10_000);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if bloom.may_contain(format!("absent{i:06}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate} too high for 10 bits/key");
    }

    #[test]
    fn roundtrip() {
        let ks = keys(100);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let enc = bloom.encode_to_vec();
        let decoded = Bloom::decode(&mut enc.as_slice()).unwrap();
        assert_eq!(decoded, bloom);
    }

    #[test]
    fn empty_filter_rejects_everything_cheaply() {
        let bloom = Bloom::build(std::iter::empty(), 0, 10);
        // Not required to reject, but must not panic and must roundtrip.
        let enc = bloom.encode_to_vec();
        assert_eq!(Bloom::decode(&mut enc.as_slice()).unwrap(), bloom);
    }

    #[test]
    fn corrupt_header_rejected() {
        let ks = keys(10);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let mut enc = bloom.encode_to_vec();
        enc[8] = 0xff; // k becomes absurd
        assert!(Bloom::decode(&mut enc.as_slice()).is_err());
    }
}
