//! History-recording chaos clients.
//!
//! A [`NemesisClient`] drives a typed [`Session`] inside the simulated
//! cluster, issuing a seeded mix of point writes, deletes, conditional
//! ops, and reads/scans at every consistency level — while recording a
//! complete invoke/retry/ok/fail history the checker can verify.
//!
//! The one subtlety worth reading twice: **retry marking**. A call is
//! marked [`HEventKind::Retry`] only when a *timeout* retransmits it —
//! the previous attempt may have applied without its ack surviving, so
//! the checker must admit at-least-once semantics for that call. Benign
//! retransmits (leader redirects, range-table refreshes, backoff
//! rotations after an explicit `Unavailable`) follow a definitive
//! rejection of the attempt and are *not* duplicate risks.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;

use spinnaker_common::{
    ClientError, Consistency, HCons, HErr, HEventKind, HOp, HResult, HState, History, Key,
    ReadCell, Value, Version,
};
use spinnaker_core::client::ClientEv;
use spinnaker_core::cluster::{read_table, Ev, World};
use spinnaker_core::messages::{ClientReply, ColumnSelect, NodeInput, RequestId};
use spinnaker_core::partition::Ring;
use spinnaker_core::session::{CallId, CallOutcome, Session, SessionCall, SessionStep};
use spinnaker_sim::{Actor, Ctx, ProcId, Time, MILLIS, SECS};

/// The single distinguished column of the register model.
fn col() -> Bytes {
    Bytes::from_static(b"c")
}

/// Progress counters shared with the campaign loop.
#[derive(Default)]
pub struct ClientProgress {
    /// Calls completed (ok or terminal failure).
    pub completed: u64,
    /// Calls issued so far.
    pub issued: u64,
    /// Target number of calls.
    pub target: u64,
}

impl ClientProgress {
    /// True once every targeted call has resolved.
    pub fn done(&self) -> bool {
        self.completed >= self.target
    }
}

/// Per-call bookkeeping from submission to completion.
struct PendingCall {
    /// Per-client op number (names the call in the history).
    op_no: u32,
    /// Key-universe index the call targets (point ops only).
    key_idx: Option<usize>,
    /// State a successful write leaves behind (belief adoption).
    wrote: Option<HState>,
}

/// A seeded mixed-workload client that records its complete op history.
pub struct NemesisClient {
    proc: ProcId,
    id: u32,
    session: Session,
    world: World,
    history: Rc<RefCell<History>>,
    progress: Rc<RefCell<ClientProgress>>,
    /// The shared key universe (small, so ops collide and races matter).
    keys: Rc<Vec<Key>>,
    pipeline: usize,
    /// Mean think time between issuances; spreads the client's op
    /// budget across the fault window instead of burning it in the
    /// first quiet milliseconds.
    think: Time,
    /// Monotone per-client sequence making every written value unique.
    seq: u64,
    next_op: u32,
    timeout: Time,
    calls: BTreeMap<CallId, PendingCall>,
    /// Requests whose next Timeout event is a benign backoff rotation,
    /// not a duplicate-risk timeout retransmit.
    backoff: BTreeSet<RequestId>,
    /// Last known `(version, state)` per key index — the belief backing
    /// conditional-op preconditions. Cleared on `VersionMismatch`.
    beliefs: BTreeMap<usize, (Version, HState)>,
    /// Commit/pin timestamps observed so far (snapshot-At reuse pool).
    at_pool: Vec<u64>,
}

impl NemesisClient {
    /// Build a client for `proc`; it starts on `Ev::Client(Start)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        proc: ProcId,
        id: u32,
        ring: Ring,
        world: World,
        history: Rc<RefCell<History>>,
        keys: Rc<Vec<Key>>,
        target: u64,
        pipeline: usize,
        think: Time,
    ) -> (NemesisClient, Rc<RefCell<ClientProgress>>) {
        let progress =
            Rc::new(RefCell::new(ClientProgress { target, ..ClientProgress::default() }));
        let pipeline = pipeline.max(1);
        let client = NemesisClient {
            proc,
            id,
            session: Session::new(ring, pipeline),
            world,
            history,
            progress: progress.clone(),
            keys,
            pipeline,
            think: think.max(1),
            seq: 0,
            next_op: 0,
            timeout: SECS,
            calls: BTreeMap::new(),
            backoff: BTreeSet::new(),
            beliefs: BTreeMap::new(),
            at_pool: Vec::new(),
        };
        (client, progress)
    }

    fn fresh_value(&mut self) -> Value {
        self.seq += 1;
        Value::from(format!("c{}.{}", self.id, self.seq).into_bytes())
    }

    /// A random read consistency: strong, timeline, leader-pinned
    /// snapshot, or a replay of a previously observed timestamp.
    fn read_consistency(&mut self, rng: &mut SmallRng) -> (Consistency, HCons) {
        match rng.gen_range(0u32..10) {
            0..=3 => (Consistency::Strong, HCons::Strong),
            4..=5 => (Consistency::Timeline, HCons::Timeline),
            6..=7 => (Consistency::SNAPSHOT_PIN, HCons::Pin),
            _ => match self.at_pool.as_slice() {
                [] => (Consistency::SNAPSHOT_PIN, HCons::Pin),
                pool => {
                    // Bias toward recent cuts; old ones age below the GC
                    // floor and (correctly) fail `SnapshotTooOld`.
                    let idx = pool.len() - 1 - rng.gen_range(0..pool.len().min(8));
                    (Consistency::snapshot_at(pool[idx]), HCons::At(pool[idx]))
                }
            },
        }
    }

    /// Generate the next call of the mix, or `None` once the target
    /// count has been issued.
    fn next_call(&mut self, now: Time, rng: &mut SmallRng) -> Option<(SessionCall, PendingCall)> {
        {
            let mut p = self.progress.borrow_mut();
            if p.issued >= p.target {
                return None;
            }
            p.issued += 1;
        }
        let op_no = self.next_op;
        self.next_op += 1;
        let nkeys = self.keys.len();
        let key_idx = rng.gen_range(0..nkeys);
        let key = self.keys[key_idx].clone();
        let mut pend = PendingCall { op_no, key_idx: Some(key_idx), wrote: None };

        let (call, hop) = match rng.gen_range(0u32..100) {
            // Blind put: the workhorse write.
            0..=24 => {
                let value = self.fresh_value();
                pend.wrote = Some(HState::Val(value.clone()));
                (
                    SessionCall::Put { key: key.clone(), cells: vec![(col(), value.clone())] },
                    HOp::Put { key, value },
                )
            }
            // Blind delete.
            25..=31 => {
                pend.wrote = Some(HState::Tomb);
                (
                    SessionCall::Delete { key: key.clone(), columns: vec![col()] },
                    HOp::Delete { key },
                )
            }
            // Conditional put against the current belief (falls back to
            // a blind put when no belief is held).
            32..=41 => match self.beliefs.get(&key_idx).cloned() {
                Some((version, expect)) => {
                    let value = self.fresh_value();
                    pend.wrote = Some(HState::Val(value.clone()));
                    (
                        SessionCall::ConditionalPut {
                            key: key.clone(),
                            col: col(),
                            value: value.clone(),
                            expected: version,
                        },
                        HOp::CondPut { key, value, expect },
                    )
                }
                None => {
                    let value = self.fresh_value();
                    pend.wrote = Some(HState::Val(value.clone()));
                    (
                        SessionCall::Put { key: key.clone(), cells: vec![(col(), value.clone())] },
                        HOp::Put { key, value },
                    )
                }
            },
            // Conditional delete, same belief model.
            42..=46 => match self.beliefs.get(&key_idx).cloned() {
                Some((version, expect)) => {
                    pend.wrote = Some(HState::Tomb);
                    (
                        SessionCall::ConditionalDelete {
                            key: key.clone(),
                            col: col(),
                            expected: version,
                        },
                        HOp::CondDelete { key, expect },
                    )
                }
                None => {
                    pend.wrote = Some(HState::Tomb);
                    (
                        SessionCall::Delete { key: key.clone(), columns: vec![col()] },
                        HOp::Delete { key },
                    )
                }
            },
            // Point read at a random consistency level.
            47..=76 => {
                let (consistency, cons) = self.read_consistency(rng);
                (
                    SessionCall::Get {
                        key: key.clone(),
                        columns: ColumnSelect::One(col()),
                        consistency,
                    },
                    HOp::Get { key, cons },
                )
            }
            // Range scan at a random consistency level.
            _ => {
                pend.key_idx = None;
                let (consistency, cons) = self.read_consistency(rng);
                let lo = rng.gen_range(0..nkeys);
                let span = rng.gen_range(1..=nkeys);
                let start = self.keys[lo].clone();
                let end = lo.checked_add(span).and_then(|hi| self.keys.get(hi)).cloned();
                (
                    SessionCall::Scan {
                        start: start.clone(),
                        end: end.clone(),
                        page: rng.gen_range(1u32..4),
                        consistency,
                    },
                    HOp::Scan { start, end, cons },
                )
            }
        };
        self.history.borrow_mut().push(now, self.id, op_no, HEventKind::Invoke(hop));
        Some((call, pend))
    }

    /// Issue-tick: submit at most one call when the pipeline has room,
    /// then re-arm the tick with jittered think time until the op
    /// budget is spent. Pacing — not the round-trip time — is what
    /// spreads the workload across the fault window.
    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Ev>) {
        let (issued, target) = {
            let p = self.progress.borrow();
            (p.issued, p.target)
        };
        if issued >= target {
            return;
        }
        if self.session.occupancy() < self.pipeline {
            if let Some((call, pend)) = self.next_call(now, ctx.rng()) {
                let id = self.session.submit(call);
                self.calls.insert(id, pend);
            }
            for req in self.session.launch() {
                self.transmit(now, req, ctx);
            }
        }
        if self.progress.borrow().issued < target {
            let delay = ctx.rng().gen_range(self.think / 2..=self.think + self.think / 2);
            ctx.schedule(delay.max(1), self.proc, Ev::Client(ClientEv::Start));
        }
    }

    /// Send (or re-send) the outstanding request `req`.
    fn transmit(&mut self, now: Time, req: RequestId, ctx: &mut Ctx<'_, Ev>) {
        if let Some((to, wire)) = self.session.wire(req, ctx.rng()) {
            let bytes = wire.wire_size();
            let at =
                self.world.net.borrow_mut().delivery_time(now, self.proc, to, bytes, ctx.rng());
            if let Some(at) = at {
                ctx.schedule_at(
                    at,
                    to,
                    Ev::Input(NodeInput::Client { from: self.proc, req: wire }),
                );
            }
        }
        ctx.schedule(self.timeout, self.proc, Ev::Client(ClientEv::Timeout(req)));
    }

    /// Fold a read's cells into the register-model state.
    fn state_of(cells: &[ReadCell]) -> HState {
        match cells.first() {
            None => HState::Never,
            Some(ReadCell { value: None, .. }) => HState::Tomb,
            Some(ReadCell { value: Some(v), .. }) => HState::Val(v.clone()),
        }
    }

    fn complete(&mut self, now: Time, call: CallId, outcome: CallOutcome) {
        let Some(pend) = self.calls.remove(&call) else { return };
        let kind = match outcome {
            CallOutcome::Written { version, ts } => {
                if let (Some(idx), Some(state)) = (pend.key_idx, pend.wrote.clone()) {
                    self.beliefs.insert(idx, (version, state));
                }
                self.note_ts(ts);
                HEventKind::Ok(HResult::Write { version, ts })
            }
            CallOutcome::Row { cells, at_ts } => {
                let state = NemesisClient::state_of(&cells);
                // Any read pairs a version with the state it produced —
                // a valid conditional-op belief even when stale (the CAS
                // then simply fails).
                if let Some(idx) = pend.key_idx {
                    let version = cells.first().map_or(0, |c| c.version);
                    self.beliefs.insert(idx, (version, state.clone()));
                }
                self.note_ts(at_ts);
                HEventKind::Ok(HResult::Read { state, at_ts })
            }
            CallOutcome::Rows { rows, at_ts } => {
                self.note_ts(at_ts);
                let rows = rows
                    .into_iter()
                    .filter_map(|r| {
                        r.cells.first().and_then(|c| c.value.clone()).map(|v| (r.key, v))
                    })
                    .collect();
                HEventKind::Ok(HResult::Rows { rows, at_ts })
            }
            CallOutcome::Failed(err) => HEventKind::Fail(match err {
                ClientError::VersionMismatch { .. } => {
                    // The belief was wrong; drop it and re-learn from a
                    // later read (the reply's `actual` version has no
                    // state paired with it).
                    if let Some(idx) = pend.key_idx {
                        self.beliefs.remove(&idx);
                    }
                    HErr::VersionMismatch
                }
                ClientError::SnapshotTooOld { .. } => HErr::SnapshotTooOld,
                _ => HErr::Other,
            }),
        };
        self.history.borrow_mut().push(now, self.id, pend.op_no, kind);
        self.progress.borrow_mut().completed += 1;
    }

    /// Remember an observed commit/pin timestamp for snapshot-At reuse.
    fn note_ts(&mut self, ts: u64) {
        if ts > 0 {
            self.at_pool.push(ts);
            if self.at_pool.len() > 64 {
                self.at_pool.remove(0);
            }
        }
    }

    fn on_reply(&mut self, now: Time, reply: ClientReply, ctx: &mut Ctx<'_, Ev>) {
        let world = self.world.clone();
        let step = self.session.on_reply(reply, || read_table(&world));
        match step {
            SessionStep::None => {}
            SessionStep::Retransmit { req, .. } => self.transmit(now, req, ctx),
            SessionStep::Continue { req } => self.transmit(now, req, ctx),
            SessionStep::Backoff { req } => {
                // The attempt was *rejected* (`Unavailable`): rotating
                // after the pause is not a duplicate risk, so remember
                // to swallow the Retry marking when the timer fires.
                self.backoff.insert(req);
                ctx.schedule(20 * MILLIS, self.proc, Ev::Client(ClientEv::Timeout(req)));
            }
            SessionStep::Done { call, outcome } => self.complete(now, call, outcome),
        }
    }

    fn on_timeout(&mut self, now: Time, req: RequestId, ctx: &mut Ctx<'_, Ev>) {
        let benign = self.backoff.remove(&req);
        let call = self.session.call_of(req);
        if let Some(next) = self.session.on_timeout(req) {
            if !benign {
                // A true timeout: the lost attempt may have applied.
                // One Retry line per retransmit — the checker budgets
                // one potential duplicate apply for each.
                if let Some(pend) = call.and_then(|c| self.calls.get(&c)) {
                    self.history.borrow_mut().push(now, self.id, pend.op_no, HEventKind::Retry);
                }
            }
            self.transmit(now, next, ctx);
        }
    }
}

impl Actor<Ev> for NemesisClient {
    fn on_event(&mut self, now: Time, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        if let Ev::Client(cev) = ev {
            match cev {
                ClientEv::Start => self.tick(now, ctx),
                ClientEv::Reply(reply) => self.on_reply(now, reply, ctx),
                ClientEv::Timeout(req) => self.on_timeout(now, req, ctx),
            }
        }
    }
}

/// Placeholder actor for two-phase client registration (reserve the
/// proc id, then swap the real client in).
pub struct Idle;

impl Actor<Ev> for Idle {
    fn on_event(&mut self, _now: Time, _ev: Ev, _ctx: &mut Ctx<'_, Ev>) {}
}

/// Adapter hosting a shared client handle as a sim actor.
pub struct Shared<A>(pub Rc<RefCell<A>>);

impl<A: Actor<Ev>> Actor<Ev> for Shared<A> {
    fn on_event(&mut self, now: Time, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        self.0.borrow_mut().on_event(now, ev, ctx);
    }
}
