//! Fault-schedule minimization.
//!
//! Given a seed whose campaign fails (consistency violation or stall),
//! the shrinker searches for a smaller fault schedule that still fails,
//! proptest-style: first delta-debugging over chunks of the event list,
//! then one-at-a-time removal. The campaign config stays pinned to the
//! seed, so a shrunk result is `(seed, subset of the seed's schedule)`
//! — replayable exactly, with most of the noise gone.

use crate::campaign::{run, CampaignConfig, RunReport};
use crate::schedule::Schedule;

/// Outcome of a shrink session.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimized schedule (still failing).
    pub schedule: Schedule,
    /// The report of the final failing run.
    pub report: RunReport,
    /// Campaign runs spent shrinking.
    pub runs: usize,
}

/// Minimize the failing schedule for `seed`. `full` must already fail
/// under `cfg` (the caller has that report in hand); returns `None` if
/// it unexpectedly passes on re-run. `budget` caps the number of
/// campaign re-runs.
pub fn shrink(seed: u64, cfg: &CampaignConfig, full: &Schedule, budget: usize) -> Option<Shrunk> {
    fn try_run(
        seed: u64,
        cfg: &CampaignConfig,
        s: &Schedule,
        runs: &mut usize,
    ) -> Option<RunReport> {
        *runs += 1;
        let report = run(seed, cfg, s);
        report.failed().then_some(report)
    }

    let mut runs = 0;
    let mut best = full.clone();
    let mut best_report = try_run(seed, cfg, &best, &mut runs)?;

    // Delta-debugging: try dropping ever-smaller chunks.
    let mut chunk = (best.events.len() / 2).max(1);
    while chunk >= 1 && runs < budget {
        let mut i = 0;
        let mut any = false;
        while i < best.events.len() && runs < budget {
            let mut candidate = best.clone();
            let hi = (i + chunk).min(candidate.events.len());
            candidate.events.drain(i..hi);
            if let Some(report) = try_run(seed, cfg, &candidate, &mut runs) {
                best = candidate;
                best_report = report;
                any = true;
                // Same index now holds the next chunk; don't advance.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !any {
            break;
        }
        chunk = if chunk > 1 { chunk / 2 } else { 1 };
    }

    Some(Shrunk { schedule: best, report: best_report, runs })
}
