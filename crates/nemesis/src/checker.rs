//! The consistency checker: validates a recorded [`History`] against the
//! register model.
//!
//! Checks, in order of depth:
//!
//! 1. **Linearizability of strong operations** — writes, conditional
//!    ops, strong gets, and strong scans (decomposed per key: each key a
//!    scan returns is one strong point read somewhere inside the scan's
//!    window). Checked per key with a Wing & Gong style search over the
//!    register state machine; per-key decomposition is sound because
//!    every operation here touches a single key.
//! 2. **Snapshot reads are exact cuts** — a read at timestamp `T` must
//!    observe, for each key, the acked write with the largest commit
//!    timestamp `≤ T` (writes whose commit timestamp is unknown — lost
//!    acks, duplicate applies — act as wildcards). Two observations of
//!    the same key at the same `T` must agree exactly (a torn cut).
//! 3. **Pin freshness** — a leader-pinned point read must cover every
//!    write to the same key acked before the read was invoked.
//! 4. **Scan shape** — rows strictly sorted, in bounds, no phantoms.
//! 5. **Timeline sanity** — a timeline read may be stale but must
//!    return a value some client actually wrote.
//!
//! ## At-least-once semantics
//!
//! A call marked [`HEventKind::Retry`] was retransmitted after a
//! timeout: an earlier attempt may have applied without its ack. The
//! checker therefore models, per retry, one *optional ghost* apply with
//! an open window — a duplicate apply lands at an unknown later moment.
//! Conditional ops self-deduplicate (the version precondition can only
//! match once), so a retried conditional that *failed* collapses to
//! "may or may not have applied" and a retried conditional that
//! succeeded stays exact.

use std::collections::{BTreeMap, BTreeSet};

use spinnaker_common::{HCons, HErr, HEventKind, HOp, HResult, HState, History, Key, Value};

/// The end-of-time sentinel for operations whose completion was never
/// observed.
const OPEN: u64 = u64::MAX;

/// One confirmed consistency violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Violation class (stable string for tests and triage).
    pub kind: &'static str,
    /// Key the violation anchors to, if any.
    pub key: Option<Key>,
    /// Human-readable description.
    pub detail: String,
    /// Minimal violating subhistory: the smallest op set the checker
    /// still rejects, one line per op.
    pub subhistory: Vec<String>,
}

/// A call reassembled from its history lines.
struct Call {
    client: u32,
    op_no: u32,
    op: HOp,
    inv: u64,
    /// Timeout retransmissions observed (each one is a potential
    /// duplicate apply).
    retries: u32,
    /// Completion time and payload, if the call completed.
    res: Option<(u64, Result<HResult, HErr>)>,
}

impl Call {
    fn label(&self) -> String {
        let outcome = match &self.res {
            None => "…open".to_string(),
            Some((t, Ok(r))) => format!("ok@{t} {r:?}"),
            Some((t, Err(e))) => format!("fail@{t} {e:?}"),
        };
        let retried = if self.retries > 0 { " [retried]" } else { "" };
        format!("c{}#{} @{} {:?}{retried} -> {outcome}", self.client, self.op_no, self.inv, self.op)
    }
}

/// Register-model semantics of one linearization candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Sem {
    /// Blind write: set the state unconditionally.
    Apply(HState),
    /// Conditional write: requires `state == expect`, then sets `to`.
    Cas { expect: HState, to: HState },
    /// A definitively failed conditional: requires `state != expect`.
    CasFail { expect: HState },
    /// Strong read observing exactly this state.
    Read(HState),
    /// Strong-scan absence: the key was not returned, so its state is
    /// `Never` or `Tomb` at the read point.
    Absent,
}

/// One operation in a per-key linearizability instance.
#[derive(Clone, Debug)]
struct LinOp {
    inv: u64,
    res: u64,
    mandatory: bool,
    sem: Sem,
    /// Index into the call table (ghosts share their origin's label).
    src: usize,
}

/// Check a history; returns every violation found (empty = consistent).
pub fn check(history: &History) -> Vec<Violation> {
    let calls = assemble(history);
    let mut violations = Vec::new();
    let universe = universe_of(&calls);

    check_scan_shape(&calls, &universe, &mut violations);
    check_linearizable(&calls, &universe, &mut violations);
    check_snapshots(&calls, &universe, &mut violations);
    check_pin_freshness(&calls, &mut violations);
    check_timeline(&calls, &mut violations);
    check_write_timestamps(&calls, &mut violations);
    violations
}

/// Reassemble history lines into calls, keyed `(client, op_no)`.
fn assemble(history: &History) -> Vec<Call> {
    let mut by_id: BTreeMap<(u32, u32), Call> = BTreeMap::new();
    for e in &history.events {
        let id = (e.client, e.op);
        match &e.kind {
            HEventKind::Invoke(op) => {
                by_id.entry(id).or_insert(Call {
                    client: e.client,
                    op_no: e.op,
                    op: op.clone(),
                    inv: e.at,
                    retries: 0,
                    res: None,
                });
            }
            HEventKind::Retry => {
                if let Some(c) = by_id.get_mut(&id) {
                    c.retries += 1;
                }
            }
            HEventKind::Ok(r) => {
                if let Some(c) = by_id.get_mut(&id) {
                    c.res = Some((e.at, Ok(r.clone())));
                }
            }
            HEventKind::Fail(err) => {
                if let Some(c) = by_id.get_mut(&id) {
                    c.res = Some((e.at, Err(*err)));
                }
            }
        }
    }
    by_id.into_values().collect()
}

/// Every key any operation ever named (point targets and scan rows).
fn universe_of(calls: &[Call]) -> BTreeSet<Key> {
    let mut keys = BTreeSet::new();
    for c in calls {
        match &c.op {
            HOp::Put { key, .. }
            | HOp::Delete { key }
            | HOp::CondPut { key, .. }
            | HOp::CondDelete { key, .. }
            | HOp::Get { key, .. } => {
                keys.insert(key.clone());
            }
            HOp::Scan { .. } => {
                if let Some((_, Ok(HResult::Rows { rows, .. }))) = &c.res {
                    for (k, _) in rows {
                        keys.insert(k.clone());
                    }
                }
            }
        }
    }
    keys
}

/// `key ∈ [start, end)`?
fn in_bounds(key: &Key, start: &Key, end: &Option<Key>) -> bool {
    key >= start && end.as_ref().is_none_or(|e| key < e)
}

/// The state a write op establishes when it applies.
fn write_effect(op: &HOp) -> Option<HState> {
    match op {
        HOp::Put { value, .. } | HOp::CondPut { value, .. } => Some(HState::Val(value.clone())),
        HOp::Delete { .. } | HOp::CondDelete { .. } => Some(HState::Tomb),
        HOp::Get { .. } | HOp::Scan { .. } => None,
    }
}

fn key_of(op: &HOp) -> Option<&Key> {
    match op {
        HOp::Put { key, .. }
        | HOp::Delete { key }
        | HOp::CondPut { key, .. }
        | HOp::CondDelete { key, .. }
        | HOp::Get { key, .. } => Some(key),
        HOp::Scan { .. } => None,
    }
}

// ---------------------------------------------------------------------
// 1. Linearizability of strong operations (per-key WGL)
// ---------------------------------------------------------------------

fn check_linearizable(calls: &[Call], universe: &BTreeSet<Key>, violations: &mut Vec<Violation>) {
    let mut per_key: BTreeMap<Key, Vec<LinOp>> = BTreeMap::new();
    let mut add = |key: &Key, op: LinOp| per_key.entry(key.clone()).or_default().push(op);

    for (idx, c) in calls.iter().enumerate() {
        match &c.op {
            HOp::Put { key, .. } | HOp::Delete { key } => {
                let effect = write_effect(&c.op).expect("write op");
                match &c.res {
                    Some((t, Ok(_))) => {
                        // Acked: applied at least once before the ack.
                        add(
                            key,
                            LinOp {
                                inv: c.inv,
                                res: *t,
                                mandatory: true,
                                sem: Sem::Apply(effect.clone()),
                                src: idx,
                            },
                        );
                        // Each timeout retransmit may have applied the
                        // same blind write again, at an unknown moment.
                        for _ in 0..c.retries {
                            add(
                                key,
                                LinOp {
                                    inv: c.inv,
                                    res: OPEN,
                                    mandatory: false,
                                    sem: Sem::Apply(effect.clone()),
                                    src: idx,
                                },
                            );
                        }
                    }
                    // Never acked (open or failed): may have applied.
                    _ => add(
                        key,
                        LinOp {
                            inv: c.inv,
                            res: OPEN,
                            mandatory: false,
                            sem: Sem::Apply(effect.clone()),
                            src: idx,
                        },
                    ),
                }
            }
            HOp::CondPut { key, expect, .. } | HOp::CondDelete { key, expect } => {
                let to = write_effect(&c.op).expect("write op");
                let cas = Sem::Cas { expect: expect.clone(), to };
                match &c.res {
                    // The version precondition can match at most once
                    // across retransmits, so an acked conditional is
                    // exact even when retried.
                    Some((t, Ok(_))) => {
                        add(key, LinOp { inv: c.inv, res: *t, mandatory: true, sem: cas, src: idx })
                    }
                    Some((t, Err(HErr::VersionMismatch))) if c.retries == 0 => {
                        // Definitively rejected. Only a `Val` expectation
                        // maps version inequality to state inequality
                        // (values are unique; tombstones are not).
                        if matches!(expect, HState::Val(_)) {
                            add(
                                key,
                                LinOp {
                                    inv: c.inv,
                                    res: *t,
                                    mandatory: true,
                                    sem: Sem::CasFail { expect: expect.clone() },
                                    src: idx,
                                },
                            );
                        }
                    }
                    // Retried-then-mismatched: an earlier attempt may
                    // have applied (its ack lost). Open/other failures
                    // likewise.
                    _ => add(
                        key,
                        LinOp { inv: c.inv, res: OPEN, mandatory: false, sem: cas, src: idx },
                    ),
                }
            }
            HOp::Get { key, cons: HCons::Strong } => {
                if let Some((t, Ok(HResult::Read { state, .. }))) = &c.res {
                    add(
                        key,
                        LinOp {
                            inv: c.inv,
                            res: *t,
                            mandatory: true,
                            sem: Sem::Read(state.clone()),
                            src: idx,
                        },
                    );
                }
            }
            HOp::Scan { start, end, cons: HCons::Strong } => {
                // Per-key decomposition: each universe key the scan
                // covers is one strong point read inside the window.
                if let Some((t, Ok(HResult::Rows { rows, .. }))) = &c.res {
                    let returned: BTreeMap<&Key, &Value> =
                        rows.iter().map(|(k, v)| (k, v)).collect();
                    for key in universe.iter().filter(|k| in_bounds(k, start, end)) {
                        let sem = match returned.get(key) {
                            Some(v) => Sem::Read(HState::Val((*v).clone())),
                            None => Sem::Absent,
                        };
                        add(key, LinOp { inv: c.inv, res: *t, mandatory: true, sem, src: idx });
                    }
                }
            }
            HOp::Get { .. } | HOp::Scan { .. } => {}
        }
    }

    for (key, ops) in per_key {
        if linearizable(&ops) {
            continue;
        }
        let sub = minimal_failing(&ops);
        violations.push(Violation {
            kind: "linearizability",
            key: Some(key.clone()),
            detail: format!(
                "no linearization of {} ops explains key {key:?} ({} in minimal subhistory)",
                ops.len(),
                sub.len(),
            ),
            subhistory: sub
                .iter()
                .map(|o| format!("{:?} win=[{},{}] {}", o.sem, o.inv, o.res, calls[o.src].label()))
                .collect(),
        });
    }
}

/// Wing & Gong style search: does any linearization of the mandatory
/// ops (plus any subset of the optional ones) drive the register
/// legally?
fn linearizable(ops: &[LinOp]) -> bool {
    // Remaining-set bitmask words + state, memoized to prune re-entry.
    let words = ops.len().div_ceil(64);
    let full: Vec<u64> = (0..words)
        .map(|w| {
            let bits = (ops.len() - w * 64).min(64);
            if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        })
        .collect();
    let mut memo: BTreeSet<(Vec<u64>, HState)> = BTreeSet::new();
    search(ops, &full, HState::Never, &mut memo)
}

fn has(mask: &[u64], i: usize) -> bool {
    mask[i / 64] & (1u64 << (i % 64)) != 0
}

fn without(mask: &[u64], i: usize) -> Vec<u64> {
    let mut m = mask.to_vec();
    m[i / 64] &= !(1u64 << (i % 64));
    m
}

fn search(
    ops: &[LinOp],
    remaining: &[u64],
    state: HState,
    memo: &mut BTreeSet<(Vec<u64>, HState)>,
) -> bool {
    let mandatory_left: Vec<usize> =
        (0..ops.len()).filter(|&i| has(remaining, i) && ops[i].mandatory).collect();
    if mandatory_left.is_empty() {
        return true;
    }
    if !memo.insert((remaining.to_vec(), state.clone())) {
        return false;
    }
    for i in (0..ops.len()).filter(|&i| has(remaining, i)) {
        let o = &ops[i];
        // Real-time order: `o` cannot linearize while another mandatory
        // op that *completed before `o` was invoked* is still pending.
        if mandatory_left.iter().any(|&m| m != i && ops[m].res < o.inv) {
            continue;
        }
        let next = match &o.sem {
            Sem::Apply(s) => s.clone(),
            Sem::Cas { expect, to } => {
                if state != *expect {
                    continue;
                }
                to.clone()
            }
            Sem::CasFail { expect } => {
                if state == *expect {
                    continue;
                }
                state.clone()
            }
            Sem::Read(s) => {
                if state != *s {
                    continue;
                }
                state.clone()
            }
            Sem::Absent => {
                if matches!(state, HState::Val(_)) {
                    continue;
                }
                state.clone()
            }
        };
        if search(ops, &without(remaining, i), next, memo) {
            return true;
        }
    }
    false
}

/// Shrink a failing per-key instance: add ops in completion order until
/// the search first fails — that prefix is the reported subhistory.
fn minimal_failing(ops: &[LinOp]) -> Vec<LinOp> {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| (ops[i].res, ops[i].inv));
    let mut subset: Vec<LinOp> = Vec::new();
    for &i in &order {
        subset.push(ops[i].clone());
        if !linearizable(&subset) {
            // Greedy second pass: drop ops the failure does not need.
            let mut j = 0;
            while j < subset.len() {
                let mut trial = subset.clone();
                trial.remove(j);
                if linearizable(&trial) {
                    j += 1;
                } else {
                    subset = trial;
                }
            }
            return subset;
        }
    }
    ops.to_vec()
}

// ---------------------------------------------------------------------
// 2. Snapshot reads are exact cuts
// ---------------------------------------------------------------------

/// What one snapshot observation claims about one key at one timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Obs {
    Exact(HState),
    /// Scan absence: `Never` or `Tomb`, indistinguishable.
    Absent,
}

fn snapshot_cons(cons: &HCons) -> bool {
    matches!(cons, HCons::Pin | HCons::At(_))
}

fn check_snapshots(calls: &[Call], universe: &BTreeSet<Key>, violations: &mut Vec<Violation>) {
    // Known committed writes per key: (commit ts, state, call idx).
    let mut known: BTreeMap<&Key, Vec<(u64, HState, usize)>> = BTreeMap::new();
    // Wildcard states per key: writes that may have applied with an
    // unknown commit timestamp (lost acks, duplicate applies).
    let mut wild: BTreeMap<&Key, Vec<HState>> = BTreeMap::new();
    for (idx, c) in calls.iter().enumerate() {
        let Some(effect) = write_effect(&c.op) else { continue };
        let key = key_of(&c.op).expect("write ops are point ops");
        match &c.res {
            Some((_, Ok(HResult::Write { ts, .. }))) => {
                known.entry(key).or_default().push((*ts, effect.clone(), idx));
                let blind = matches!(c.op, HOp::Put { .. } | HOp::Delete { .. });
                if blind && c.retries > 0 {
                    // A duplicate apply commits again at a fresh,
                    // unreported timestamp.
                    wild.entry(key).or_default().push(effect);
                }
            }
            Some((_, Err(HErr::VersionMismatch))) if c.retries == 0 => {}
            // Open, retried-then-failed, or failed otherwise: the write
            // may have applied with an unknown timestamp.
            _ => wild.entry(key).or_default().push(effect),
        }
    }
    for v in known.values_mut() {
        v.sort_by_key(|(ts, _, _)| *ts);
    }

    // Gather observations: (at_ts, key) -> list of (Obs, call idx).
    let mut by_cut: BTreeMap<(u64, &Key), Vec<(Obs, usize)>> = BTreeMap::new();
    for (idx, c) in calls.iter().enumerate() {
        match &c.op {
            HOp::Get { key, cons } if snapshot_cons(cons) => {
                if let Some((_, Ok(HResult::Read { state, at_ts }))) = &c.res {
                    if *at_ts > 0 {
                        by_cut
                            .entry((*at_ts, key))
                            .or_default()
                            .push((Obs::Exact(state.clone()), idx));
                    }
                }
            }
            HOp::Scan { start, end, cons } if snapshot_cons(cons) => {
                if let Some((_, Ok(HResult::Rows { rows, at_ts }))) = &c.res {
                    if *at_ts == 0 {
                        continue;
                    }
                    let returned: BTreeMap<&Key, &Value> =
                        rows.iter().map(|(k, v)| (k, v)).collect();
                    for key in universe.iter().filter(|k| in_bounds(k, start, end)) {
                        let obs = match returned.get(key) {
                            Some(v) => Obs::Exact(HState::Val((*v).clone())),
                            None => Obs::Absent,
                        };
                        by_cut.entry((*at_ts, key)).or_default().push((obs, idx));
                    }
                }
            }
            _ => {}
        }
    }

    let empty_known = Vec::new();
    let empty_wild = Vec::new();
    for ((at_ts, key), obs) in &by_cut {
        let kn = known.get(key).unwrap_or(&empty_known);
        let wl = wild.get(key).unwrap_or(&empty_wild);
        // The state the known-timestamp writes pin at this cut.
        let cut = kn.iter().rev().find(|(ts, _, _)| *ts <= *at_ts);
        let cut_state = cut.map_or(HState::Never, |(_, s, _)| s.clone());

        for (o, idx) in obs {
            let valid = match o {
                Obs::Exact(s) => *s == cut_state || wl.contains(s),
                Obs::Absent => !matches!(cut_state, HState::Val(_)) || wl.contains(&HState::Tomb),
            };
            if !valid {
                let mut sub: Vec<String> = vec![calls[*idx].label()];
                sub.extend(kn.iter().map(|(_, _, i)| calls[*i].label()));
                violations.push(Violation {
                    kind: "snapshot-cut",
                    key: Some((*key).clone()),
                    detail: format!(
                        "cut at ts={at_ts} must show {cut_state:?} for key {key:?} \
                         (wildcards {wl:?}), but a read observed {o:?}"
                    ),
                    subhistory: sub,
                });
            }
        }

        // Torn cut: all exact observations at one (ts, key) must agree,
        // and a `Val` observation contradicts any absence.
        let exacts: Vec<&(Obs, usize)> =
            obs.iter().filter(|(o, _)| matches!(o, Obs::Exact(_))).collect();
        let disagree = exacts.windows(2).any(|w| w[0].0 != w[1].0)
            || (obs.iter().any(|(o, _)| matches!(o, Obs::Absent))
                && exacts.iter().any(|(o, _)| matches!(o, Obs::Exact(HState::Val(_)))));
        if disagree {
            violations.push(Violation {
                kind: "torn-snapshot-cut",
                key: Some((*key).clone()),
                detail: format!("observations of key {key:?} at ts={at_ts} disagree"),
                subhistory: obs
                    .iter()
                    .map(|(o, i)| format!("{o:?} {}", calls[*i].label()))
                    .collect(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// 3. Pin freshness
// ---------------------------------------------------------------------

/// A leader-pinned point read covers every write to the same key that
/// was acknowledged before the read was invoked (same key ⇒ same range,
/// so clock skew across ranges cannot excuse a stale pin).
fn check_pin_freshness(calls: &[Call], violations: &mut Vec<Violation>) {
    for c in calls {
        let HOp::Get { key, cons: HCons::Pin } = &c.op else { continue };
        let Some((_, Ok(HResult::Read { at_ts, .. }))) = &c.res else { continue };
        if *at_ts == 0 {
            continue;
        }
        for w in calls {
            if key_of(&w.op) != Some(key) || write_effect(&w.op).is_none() {
                continue;
            }
            if let Some((wt, Ok(HResult::Write { ts, .. }))) = &w.res {
                if *wt < c.inv && *ts > *at_ts {
                    violations.push(Violation {
                        kind: "stale-pin",
                        key: Some(key.clone()),
                        detail: format!(
                            "pin at ts={at_ts} excludes a write acked at {wt} (ts={ts}) \
                             before the read began at {}",
                            c.inv
                        ),
                        subhistory: vec![c.label(), w.label()],
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. Scan shape
// ---------------------------------------------------------------------

fn check_scan_shape(calls: &[Call], universe: &BTreeSet<Key>, violations: &mut Vec<Violation>) {
    for c in calls {
        let HOp::Scan { start, end, .. } = &c.op else { continue };
        let Some((_, Ok(HResult::Rows { rows, .. }))) = &c.res else { continue };
        let mut bad = Vec::new();
        for w in rows.windows(2) {
            if w[0].0 >= w[1].0 {
                bad.push(format!("rows out of order / duplicated: {:?} !< {:?}", w[0].0, w[1].0));
            }
        }
        for (k, _) in rows {
            if !in_bounds(k, start, end) {
                bad.push(format!("row {k:?} outside [{start:?}, {end:?})"));
            }
            if !universe.contains(k) {
                bad.push(format!("phantom row {k:?}: no client ever wrote this key"));
            }
        }
        for detail in bad {
            violations.push(Violation {
                kind: "scan-shape",
                key: None,
                detail,
                subhistory: vec![c.label()],
            });
        }
    }
}

// ---------------------------------------------------------------------
// 5. Timeline sanity
// ---------------------------------------------------------------------

/// Timeline reads may be stale, but can only return states some write
/// could have produced.
fn check_timeline(calls: &[Call], violations: &mut Vec<Violation>) {
    let mut values: BTreeMap<&Key, BTreeSet<&Value>> = BTreeMap::new();
    let mut deleted: BTreeSet<&Key> = BTreeSet::new();
    for c in calls {
        match &c.op {
            HOp::Put { key, value } | HOp::CondPut { key, value, .. } => {
                values.entry(key).or_default().insert(value);
            }
            HOp::Delete { key } | HOp::CondDelete { key, .. } => {
                deleted.insert(key);
            }
            _ => {}
        }
    }
    for c in calls {
        let HOp::Get { key, cons: HCons::Timeline } = &c.op else { continue };
        let Some((_, Ok(HResult::Read { state, .. }))) = &c.res else { continue };
        let ok = match state {
            HState::Never => true,
            HState::Tomb => deleted.contains(key),
            HState::Val(v) => values.get(key).is_some_and(|vs| vs.contains(v)),
        };
        if !ok {
            violations.push(Violation {
                kind: "timeline-phantom",
                key: Some(key.clone()),
                detail: format!("timeline read observed {state:?}, which no client ever wrote"),
                subhistory: vec![c.label()],
            });
        }
    }
}

// ---------------------------------------------------------------------
// 6. Commit-timestamp sanity
// ---------------------------------------------------------------------

/// Two acked writes to one key can never share a commit timestamp (the
/// key lives in one range at a time and the range's commit clock is
/// strictly monotone).
fn check_write_timestamps(calls: &[Call], violations: &mut Vec<Violation>) {
    let mut seen: BTreeMap<(&Key, u64), usize> = BTreeMap::new();
    for (idx, c) in calls.iter().enumerate() {
        if write_effect(&c.op).is_none() {
            continue;
        }
        let key = key_of(&c.op).expect("write ops are point ops");
        let Some((_, Ok(HResult::Write { ts, .. }))) = &c.res else { continue };
        if let Some(prev) = seen.insert((key, *ts), idx) {
            violations.push(Violation {
                kind: "duplicate-commit-ts",
                key: Some(key.clone()),
                detail: format!("two acked writes to {key:?} share commit ts {ts}"),
                subhistory: vec![calls[prev].label(), calls[idx].label()],
            });
        }
    }
}
