//! Nemesis: deterministic chaos campaigns with a history-recording
//! consistency checker.
//!
//! Everything derives from one `u64` seed: the cluster shape, the
//! client fleet and its op mix, and the fault schedule (crashes,
//! partitions, WAL disk faults, clock skew, retention squeezes, and
//! online splits/merges/moves). A campaign records a complete
//! invoke/ok/fail/timeout history ([`spinnaker_common::History`]) and
//! the [`checker`] validates it after the fact:
//!
//! * strong ops are checked for per-key linearizability (WGL-style
//!   search with memoization),
//! * snapshot reads are checked for an exact cut — every observed cell
//!   consistent with one prefix of the committed write order,
//! * pinned snapshots are checked against lease-floor staleness, and
//! * scans are checked for shape (sorted, in-bounds, no phantoms).
//!
//! A failing seed can be [shrunk](mod@shrink) to a minimal fault schedule,
//! and replayed from the seed alone — same seed, byte-identical
//! history.
//!
//! Entry points: [`campaign::run_seed`] for one seed end to end,
//! [`shrink::shrink`] to minimize a failure, and the
//! `spinnaker-nemesis` bin to sweep many seeds (CI) or run unbounded
//! (soak).

#![warn(missing_docs)]

pub mod campaign;
pub mod checker;
pub mod client;
pub mod schedule;
pub mod shrink;

pub use campaign::{run, run_seed, CampaignConfig, RunReport};
pub use checker::{check, Violation};
pub use schedule::{generate, FaultEvent, FaultKind, Schedule};
pub use shrink::shrink;
