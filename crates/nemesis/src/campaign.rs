//! Campaign driver: one seed in, one checked run out.
//!
//! A campaign builds a simulated cluster, registers a fleet of
//! history-recording [`NemesisClient`]s, replays the seed's fault
//! [`Schedule`] against the live cluster (resolving each intent —
//! which node, which range, which key — against the state at apply
//! time), then heals everything, drains the clients, and hands the
//! recorded [`History`] to the [`checker`].
//!
//! Everything — cluster config, client mix, fault schedule — derives
//! from the one seed, so a failing run is replayable (and shrinkable)
//! from the seed alone, and two runs of the same seed produce
//! byte-identical history artifacts.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use spinnaker_common::{History, Key, NodeId};
use spinnaker_core::client::ClientEv;
use spinnaker_core::cluster::{ClusterConfig, Ev, SimCluster};
use spinnaker_core::partition::{key_to_u64, u64_to_key};
use spinnaker_sim::{DiskProfile, ProcId, Time, MILLIS, SECS};

use crate::checker::{self, Violation};
use crate::client::{ClientProgress, Idle, NemesisClient, Shared};
use crate::schedule::{generate, FaultEvent, FaultKind, Schedule};

/// Campaign sizing, all derived from the seed (or pinned by tests).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Number of concurrent clients.
    pub clients: u32,
    /// Calls each client keeps in flight.
    pub pipeline: usize,
    /// Calls each client issues in total.
    pub ops_per_client: u64,
    /// Size of the shared key universe (small, so ops collide).
    pub keys: usize,
    /// Quiet period for boot and elections before traffic and faults.
    pub warmup: Time,
    /// Length of the fault window.
    pub duration: Time,
    /// Maximum post-heal drain before declaring a stall.
    pub drain: Time,
    /// MVCC retention window (`NodeConfig::snapshot_retain`).
    pub snapshot_retain: Time,
    /// Snapshot pin lease (`NodeConfig::pin_lease`; 0 disables).
    pub pin_lease: Time,
    /// Closed-timestamp piggyback period (`NodeConfig::commit_period`).
    pub commit_period: Time,
}

/// Domain separator for config derivation (distinct from the schedule
/// and simulator streams).
const CONFIG_STREAM: u64 = 0x434f_4e46_4947; // "CONFIG"

impl CampaignConfig {
    /// Derive a campaign shape from the seed.
    pub fn from_seed(seed: u64) -> CampaignConfig {
        let mut rng = SmallRng::seed_from_u64(seed ^ CONFIG_STREAM);
        CampaignConfig {
            nodes: if rng.gen_bool(0.7) { 5 } else { 3 },
            clients: rng.gen_range(3..=5),
            pipeline: rng.gen_range(1..=2),
            ops_per_client: rng.gen_range(25..=50),
            keys: rng.gen_range(8..=16),
            warmup: 3 * SECS,
            duration: rng.gen_range(8 * SECS..=14 * SECS),
            drain: 30 * SECS,
            snapshot_retain: rng.gen_range(SECS..=5 * SECS),
            pin_lease: match rng.gen_range(0u32..10) {
                0 => 0,
                1..=4 => 5 * SECS,
                _ => 10 * SECS,
            },
            commit_period: if rng.gen_bool(0.5) { 50 * MILLIS } else { 100 * MILLIS },
        }
    }
}

/// Everything one campaign run produced.
#[derive(Debug)]
pub struct RunReport {
    /// The seed that generated the run.
    pub seed: u64,
    /// The complete recorded op history.
    pub history: History,
    /// Checker verdict (empty = consistent).
    pub violations: Vec<Violation>,
    /// Calls issued across all clients.
    pub ops_issued: u64,
    /// Calls that resolved (ok or terminal failure).
    pub ops_completed: u64,
    /// True when clients failed to drain after every fault was healed —
    /// a liveness failure.
    pub stalled: bool,
    /// Fault intents actually applied (guards skip inapplicable ones).
    pub faults_applied: usize,
    /// Whether every range had an elected leader when the run ended
    /// (diagnostic for stalls: `false` points at an election wedge, not
    /// a client bug).
    pub ranges_led: bool,
    /// End-of-run cluster health lines (populated on a stall).
    pub health: Vec<String>,
}

impl RunReport {
    /// True when the run found a safety or liveness problem.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty() || self.stalled
    }
}

/// Run one seed end to end: derived config, derived schedule.
pub fn run_seed(seed: u64) -> RunReport {
    let cfg = CampaignConfig::from_seed(seed);
    let schedule = generate(seed, cfg.nodes, cfg.warmup, cfg.warmup + cfg.duration);
    run(seed, &cfg, &schedule)
}

/// Run a campaign with an explicit schedule (the shrinker re-runs with
/// event subsets; tests pin schedules directly).
pub fn run(seed: u64, cfg: &CampaignConfig, schedule: &Schedule) -> RunReport {
    let mut cluster = {
        let mut cc = ClusterConfig { nodes: cfg.nodes, seed, ..Default::default() };
        cc.disk = DiskProfile::Ssd;
        cc.node.commit_period = cfg.commit_period;
        cc.node.snapshot_retain = cfg.snapshot_retain;
        cc.node.pin_lease = cfg.pin_lease;
        SimCluster::new(cc)
    };

    // Boot and elect. Extend the quiet period if elections are slow —
    // fault injection into a cluster that never got live says nothing.
    let mut t = cfg.warmup;
    cluster.run_until(t);
    for _ in 0..20 {
        if cluster.all_ranges_led() {
            break;
        }
        t += 500 * MILLIS;
        cluster.run_until(t);
    }

    // The shared key universe, evenly spread over the space (and so
    // over every range).
    let step = u64::MAX / cfg.keys as u64;
    let keys: Rc<Vec<Key>> =
        Rc::new((0..cfg.keys as u64).map(|i| u64_to_key(i.wrapping_mul(step))).collect());

    let mut history = History::new();
    history.meta("seed", seed);
    history.meta("nodes", cfg.nodes);
    history.meta("clients", cfg.clients);
    history.meta("keys", cfg.keys);
    history.meta("ops_per_client", cfg.ops_per_client);
    history.meta("schedule_events", schedule.events.len());
    let history = Rc::new(RefCell::new(history));

    // Register the client fleet (two-phase: reserve the proc id, then
    // swap in the client that knows it).
    let mut progresses: Vec<Rc<RefCell<ClientProgress>>> = Vec::new();
    let mut client_procs: Vec<ProcId> = Vec::new();
    // Mean think time spreading each client's op budget across the
    // fault window (ops that race ahead of the faults test nothing).
    let think = (cfg.duration / cfg.ops_per_client.max(1)).max(MILLIS);
    for id in 0..cfg.clients {
        let proc = cluster.sim.add_actor(Box::new(Idle));
        let (client, progress) = NemesisClient::new(
            proc,
            id,
            cluster.ring.clone(),
            cluster.world.clone(),
            history.clone(),
            keys.clone(),
            cfg.ops_per_client,
            cfg.pipeline,
            think,
        );
        cluster.sim.replace_actor(proc, Box::new(Shared(Rc::new(RefCell::new(client)))));
        cluster.sim.schedule(t + u64::from(id) * 10 * MILLIS, proc, Ev::Client(ClientEv::Start));
        progresses.push(progress);
        client_procs.push(proc);
    }

    // Replay the fault schedule against the live cluster.
    let mut injector = Injector {
        nodes: cfg.nodes,
        minority_max: (cfg.nodes - 1) / 2,
        crashed: Vec::new(),
        ticker: cfg.nodes as ProcId,
        client_procs,
        applied: 0,
    };
    for ev in &schedule.events {
        cluster.run_until(ev.at.max(t));
        injector.apply(&mut cluster, ev);
    }

    // Heal the world and drain the clients.
    let fault_end = (cfg.warmup + cfg.duration).max(t);
    cluster.run_until(fault_end);
    cluster.world.net.borrow_mut().heal_all();
    let deadline = fault_end + cfg.drain;
    let mut now = fault_end;
    while now < deadline {
        // Revive anything that is (or just went) down: crash events
        // from the schedule, and fail-stop poisonings from armed disk
        // faults that fired after their injection point.
        for id in 0..cfg.nodes as NodeId {
            if !cluster.is_up(id) {
                cluster.restart_node(now, id);
            }
        }
        now += SECS;
        cluster.run_until(now);
        if progresses.iter().all(|p| p.borrow().done()) {
            break;
        }
    }

    let stalled = !progresses.iter().all(|p| p.borrow().done());
    let ranges_led = cluster.all_ranges_led();
    let mut health = Vec::new();
    if stalled {
        for id in 0..cfg.nodes as NodeId {
            health.push(format!("node {id}: up={}", cluster.is_up(id)));
        }
        let ring = cluster.current_ring();
        for def in ring.defs() {
            let roles: Vec<String> = def
                .cohort
                .iter()
                .map(|&m| format!("{m}:{:?}", cluster.role_of(def.id, m)))
                .collect();
            health.push(format!(
                "range {}: cohort={:?} leader={:?} roles=[{}] moving={:?}",
                def.id,
                def.cohort,
                cluster.leader_of(def.id),
                roles.join(" "),
                def.moving
            ));
        }
    }
    let (mut issued, mut completed) = (0, 0);
    for p in &progresses {
        let p = p.borrow();
        issued += p.issued;
        completed += p.completed;
    }
    let history = Rc::try_unwrap(history).map(RefCell::into_inner).unwrap_or_else(|rc| {
        // Client actors still hold handles; clone the contents out.
        rc.borrow().clone()
    });
    let violations = checker::check(&history);
    RunReport {
        seed,
        history,
        violations,
        ops_issued: issued,
        ops_completed: completed,
        stalled,
        faults_applied: injector.applied,
        ranges_led,
        health,
    }
}

/// Resolves fault intents against live cluster state and applies them.
struct Injector {
    nodes: usize,
    minority_max: usize,
    /// Crash order (restart pops the longest-crashed first).
    crashed: Vec<NodeId>,
    ticker: ProcId,
    client_procs: Vec<ProcId>,
    applied: usize,
}

impl Injector {
    fn apply(&mut self, cluster: &mut SimCluster, ev: &FaultEvent) {
        let at = ev.at;
        let n = self.nodes as u64;
        match &ev.kind {
            FaultKind::Crash { node } => {
                // Keep a majority of nodes up so the cluster stays able
                // to make progress between faults.
                if self.crashed.len() >= self.minority_max {
                    return;
                }
                let mut id = (*node % n) as NodeId;
                for _ in 0..self.nodes {
                    if !self.crashed.contains(&id) && cluster.is_up(id) {
                        cluster.crash_node(at, id, false);
                        self.crashed.push(id);
                        self.applied += 1;
                        return;
                    }
                    id = (id + 1) % self.nodes as NodeId;
                }
            }
            FaultKind::Restart => {
                if self.crashed.is_empty() {
                    return;
                }
                let id = self.crashed.remove(0);
                cluster.restart_node(at, id);
                self.applied += 1;
            }
            FaultKind::Partition { pick, size } => {
                let size = (*size as usize).clamp(1, self.minority_max.max(1));
                let start = (*pick % n) as usize;
                let minority: Vec<ProcId> =
                    (0..size).map(|i| ((start + i) % self.nodes) as ProcId).collect();
                let mut rest: Vec<ProcId> =
                    (0..self.nodes as ProcId).filter(|p| !minority.contains(p)).collect();
                rest.push(self.ticker);
                rest.extend(&self.client_procs);
                cluster.run_until(at);
                cluster.world.net.borrow_mut().partition(&minority, &rest);
                self.applied += 1;
            }
            FaultKind::Heal => {
                cluster.run_until(at);
                cluster.world.net.borrow_mut().heal_all();
                self.applied += 1;
            }
            FaultKind::DiskFault { node, sync_after, append_after, sticky } => {
                let id = (*node % n) as NodeId;
                if !cluster.is_up(id) || (*sync_after == 0 && *append_after == 0) {
                    return;
                }
                cluster.inject_disk_fault(at, id, *sync_after, *append_after, *sticky);
                self.applied += 1;
            }
            FaultKind::ClockSkew { node, offset } => {
                cluster.set_clock_skew(at, (*node % n) as NodeId, *offset);
                self.applied += 1;
            }
            FaultKind::Split { pick } => {
                let ring = cluster.current_ring();
                let defs: Vec<_> = ring.defs().collect();
                let def = &defs[(*pick % defs.len() as u64) as usize];
                let lo = key_to_u64(&def.start);
                let hi = def.end.as_ref().map_or(u64::MAX, key_to_u64);
                if hi.saturating_sub(lo) < 2 {
                    return;
                }
                let mid = lo + (hi - lo) / 2;
                cluster.split_range(at, def.id, u64_to_key(mid));
                self.applied += 1;
            }
            FaultKind::Merge { pick } => {
                let ring = cluster.current_ring();
                let defs: Vec<_> = ring.defs().collect();
                let mergeable: Vec<_> = defs
                    .windows(2)
                    .filter(|w| {
                        let mut a = w[0].cohort.clone();
                        let mut b = w[1].cohort.clone();
                        a.sort_unstable();
                        b.sort_unstable();
                        a == b && w[0].moving.is_none() && w[1].moving.is_none()
                    })
                    .collect();
                if mergeable.is_empty() {
                    return;
                }
                let pair = &mergeable[(*pick % mergeable.len() as u64) as usize];
                cluster.merge_ranges(at, pair[0].id, pair[1].id);
                self.applied += 1;
            }
            FaultKind::Move { pick } => {
                let ring = cluster.current_ring();
                let defs: Vec<_> = ring.defs().collect();
                let def = &defs[(*pick % defs.len() as u64) as usize];
                if def.moving.is_some() {
                    return;
                }
                let from = def.cohort[(*pick / 7 % def.cohort.len() as u64) as usize];
                let outside: Vec<NodeId> =
                    (0..self.nodes as NodeId).filter(|id| !def.cohort.contains(id)).collect();
                if outside.is_empty() {
                    return;
                }
                let to = outside[(*pick / 11 % outside.len() as u64) as usize];
                cluster.move_replica(at, def.id, from, to);
                self.applied += 1;
            }
            FaultKind::GcSqueeze { node, retain } => {
                cluster.set_retention(at, (*node % n) as NodeId, *retain);
                self.applied += 1;
            }
        }
    }
}
