//! Seed-sweep driver for nemesis campaigns.
//!
//! ```text
//! spinnaker-nemesis [--seeds N] [--start-seed S]   # CI: N seeds, exit 1 on failure
//! spinnaker-nemesis --seed X [--shrink]            # replay one seed
//! spinnaker-nemesis --soak [--start-seed S]        # unbounded local soak
//! spinnaker-nemesis --artifact-dir DIR ...         # dump failing histories
//! ```
//!
//! Every failure prints the seed; the seed alone reproduces the run.

use std::process::ExitCode;

use spinnaker_nemesis::{campaign, schedule, shrink, RunReport};

struct Args {
    seeds: u64,
    start_seed: u64,
    one_seed: Option<u64>,
    soak: bool,
    shrink: bool,
    artifact_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 20,
        start_seed: 1,
        one_seed: None,
        soak: false,
        shrink: false,
        artifact_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--start-seed" => {
                args.start_seed = value("--start-seed")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => args.one_seed = Some(value("--seed")?.parse().map_err(|e| format!("{e}"))?),
            "--soak" => args.soak = true,
            "--shrink" => args.shrink = true,
            "--artifact-dir" => args.artifact_dir = Some(value("--artifact-dir")?),
            "--help" | "-h" => {
                println!(
                    "usage: spinnaker-nemesis [--seeds N] [--start-seed S] [--seed X] \
                     [--soak] [--shrink] [--artifact-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn report_failure(report: &RunReport, args: &Args) {
    println!("FAIL seed={}", report.seed);
    if report.stalled {
        println!(
            "  stalled: {}/{} ops completed after heal + drain (ranges_led={})",
            report.ops_completed, report.ops_issued, report.ranges_led
        );
        for line in &report.health {
            println!("    {line}");
        }
        use spinnaker_common::HEventKind;
        use std::collections::BTreeMap;
        let mut open: BTreeMap<(u32, u32), String> = BTreeMap::new();
        for e in &report.history.events {
            match &e.kind {
                HEventKind::Invoke(op) => {
                    open.insert((e.client, e.op), format!("@{} {op:?}", e.at));
                }
                HEventKind::Ok(_) | HEventKind::Fail(_) => {
                    open.remove(&(e.client, e.op));
                }
                HEventKind::Retry => {}
            }
        }
        for ((client, op), line) in open {
            println!("    open c{client}#{op} {line}");
        }
    }
    for v in &report.violations {
        println!("  violation [{}] {}", v.kind, v.detail);
        for line in &v.subhistory {
            println!("    | {line}");
        }
    }
    if let Some(dir) = &args.artifact_dir {
        let _ = std::fs::create_dir_all(dir);
        let path = format!("{dir}/seed-{}.history", report.seed);
        match std::fs::write(&path, report.history.serialize()) {
            Ok(()) => println!("  history written to {path}"),
            Err(e) => println!("  could not write {path}: {e}"),
        }
    }
    println!("  reproduce with: spinnaker-nemesis --seed {} --shrink", report.seed);
}

fn run_one(seed: u64, args: &Args) -> bool {
    let report = campaign::run_seed(seed);
    if report.failed() {
        report_failure(&report, args);
        if args.shrink {
            let cfg = campaign::CampaignConfig::from_seed(seed);
            let full = schedule::generate(seed, cfg.nodes, cfg.warmup, cfg.warmup + cfg.duration);
            match shrink::shrink(seed, &cfg, &full, 200) {
                Some(shrunk) => {
                    println!(
                        "  shrunk to {} fault events (from {}) in {} runs:",
                        shrunk.schedule.events.len(),
                        full.events.len(),
                        shrunk.runs
                    );
                    for line in shrunk.schedule.describe() {
                        println!("    {line}");
                    }
                }
                None => println!("  shrink: failure did not reproduce on re-run"),
            }
        }
        false
    } else {
        println!(
            "ok   seed={seed} ops={}/{} faults={} history_events={}",
            report.ops_completed,
            report.ops_issued,
            report.faults_applied,
            report.history.events.len()
        );
        true
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(seed) = args.one_seed {
        return if run_one(seed, &args) { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let mut seed = args.start_seed;
    let mut failures = 0u64;
    let mut ran = 0u64;
    loop {
        if !args.soak && ran >= args.seeds {
            break;
        }
        if !run_one(seed, &args) {
            failures += 1;
            if !args.soak {
                break;
            }
        }
        seed += 1;
        ran += 1;
    }
    println!("{ran} seed(s) run, {failures} failure(s)");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
