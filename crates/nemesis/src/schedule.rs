//! Seeded fault-schedule generation.
//!
//! A [`Schedule`] is a time-ordered list of fault events derived entirely
//! from one `u64` seed: crashes with paired restarts, asymmetric network
//! partitions with paired heals, WAL disk faults, clock skew, MVCC
//! retention squeezes, and online reconfigurations (splits, merges,
//! cohort moves). The generator emits *intents* — picks are raw numbers
//! resolved against the live cluster state at apply time (the range
//! table is dynamic, so "split range #pick" can only be decided then) —
//! which keeps a schedule replayable from its seed alone and lets the
//! shrinker drop events without invalidating the rest.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spinnaker_sim::{Time, MILLIS, SECS};

/// One fault intent. Node and range picks are raw values reduced modulo
/// the live population at apply time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash a node (volatile state dropped, off the network).
    Crash {
        /// Node pick (mod live node count at apply time).
        node: u64,
    },
    /// Restart the longest-crashed node from its synced on-disk state.
    Restart,
    /// Partition a minority of nodes away from the rest of the world
    /// (majority, clients, and the coordination ticker stay connected).
    Partition {
        /// Pick resolving which minority subset is isolated.
        pick: u64,
        /// Minority size (clamped to less than half the cluster).
        size: u64,
    },
    /// Heal every cut link.
    Heal,
    /// Arm a WAL disk fault: the n-th sync and/or append from now fails.
    DiskFault {
        /// Node pick.
        node: u64,
        /// Fail the n-th WAL sync (0 = leave syncs healthy).
        sync_after: u64,
        /// Fail the n-th WAL append (0 = leave appends healthy).
        append_after: u64,
        /// Keep the device dead until restart.
        sticky: bool,
    },
    /// Skew a node's protocol clock by a signed offset.
    ClockSkew {
        /// Node pick.
        node: u64,
        /// Signed offset applied to the node-local clock.
        offset: i64,
    },
    /// Split a range (resolved to a live range and an interior key at
    /// apply time).
    Split {
        /// Range pick (mod live range count).
        pick: u64,
    },
    /// Merge an adjacent same-cohort range pair, if one exists.
    Merge {
        /// Pick among the mergeable pairs.
        pick: u64,
    },
    /// Move one replica of a range to a node outside its cohort.
    Move {
        /// Range/target pick.
        pick: u64,
    },
    /// Squeeze (or relax) a node's MVCC retention window, raising the GC
    /// floor under live snapshot readers.
    GcSqueeze {
        /// Node pick.
        node: u64,
        /// New retention window.
        retain: Time,
    },
}

/// A fault intent stamped with its virtual injection time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time to inject at.
    pub at: Time,
    /// What to inject.
    pub kind: FaultKind,
}

/// A complete fault schedule, time-ordered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Events sorted by [`FaultEvent::at`].
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// One-line description per event (seed artifacts, shrink reports).
    pub fn describe(&self) -> Vec<String> {
        self.events.iter().map(|e| format!("{:>12} {:?}", e.at, e.kind)).collect()
    }
}

/// Domain separator: schedule generation must not share a stream with
/// the simulator (both are seeded from the campaign seed).
const SCHEDULE_STREAM: u64 = 0x004e_454d_4553_4953; // "NEMESIS"

/// Generate the fault schedule for `seed`: events in `[start, end)`,
/// sized for `nodes` nodes. Deterministic — equal inputs, equal output.
pub fn generate(seed: u64, nodes: usize, start: Time, end: Time) -> Schedule {
    let mut rng = SmallRng::seed_from_u64(seed ^ SCHEDULE_STREAM);
    let minority_max = ((nodes as u64).saturating_sub(1) / 2).max(1);
    let mut events = Vec::new();
    let mut t = start;
    while t < end {
        t += rng.gen_range(200 * MILLIS..1500 * MILLIS);
        if t >= end {
            break;
        }
        let kind = match rng.gen_range(0u32..100) {
            // Crash + paired restart after a recovery delay: the pair
            // keeps generated schedules mostly-live so clients make
            // progress between faults (apply-time guards cap how many
            // nodes are down at once regardless).
            0..=17 => {
                events.push(FaultEvent {
                    at: t + rng.gen_range(500 * MILLIS..3 * SECS),
                    kind: FaultKind::Restart,
                });
                FaultKind::Crash { node: rng.gen() }
            }
            18..=33 => {
                events.push(FaultEvent {
                    at: t + rng.gen_range(500 * MILLIS..2 * SECS),
                    kind: FaultKind::Heal,
                });
                FaultKind::Partition { pick: rng.gen(), size: rng.gen_range(1..=minority_max) }
            }
            34..=48 => FaultKind::DiskFault {
                node: rng.gen(),
                sync_after: if rng.gen_bool(0.7) { rng.gen_range(1..20) } else { 0 },
                append_after: if rng.gen_bool(0.3) { rng.gen_range(1..20) } else { 0 },
                sticky: rng.gen_bool(0.3),
            },
            49..=60 => FaultKind::ClockSkew {
                node: rng.gen(),
                offset: rng.gen_range(-2_000_000_000i64..2_000_000_000),
            },
            61..=72 => FaultKind::Split { pick: rng.gen() },
            73..=81 => FaultKind::Merge { pick: rng.gen() },
            82..=90 => FaultKind::Move { pick: rng.gen() },
            _ => FaultKind::GcSqueeze {
                node: rng.gen(),
                retain: rng.gen_range(200 * MILLIS..2 * SECS),
            },
        };
        events.push(FaultEvent { at: t, kind });
    }
    events.sort_by_key(|e| e.at);
    Schedule { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = generate(7, 5, SECS, 10 * SECS);
        let b = generate(7, 5, SECS, 10 * SECS);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(7, 5, SECS, 10 * SECS);
        let b = generate(8, 5, SECS, 10 * SECS);
        assert_ne!(a, b);
    }
}
