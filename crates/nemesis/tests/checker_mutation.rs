//! Checker self-test by mutation: a checker that cannot reject a
//! corrupted history proves nothing by accepting a real one.
//!
//! A small hand-built history is verified clean, then corrupted four
//! ways — a lost acknowledged write, a stale strong read, a torn
//! snapshot cut, and a duplicated scan row — and the checker must catch
//! every mutation, each under the expected violation class.

use spinnaker_common::{HCons, HEventKind, HOp, HResult, HState, History, Key, Value};
use spinnaker_nemesis::check;

fn key() -> Key {
    Key::from("k")
}

fn val(s: &str) -> Value {
    Value::from(s.as_bytes().to_vec())
}

/// A minimal consistent run on one key:
///
/// * c0#0 put v1   (acked, commit ts 150)
/// * c0#1 put v2   (acked, commit ts 350)
/// * c1#0 strong get   -> v2
/// * c1#1 strong scan  -> [k = v2]
/// * c2#0 snapshot get @160 -> v1
/// * c2#1 snapshot get @160 -> v1   (same cut read twice)
fn good_history() -> History {
    let mut h = History::new();
    h.push(100, 0, 0, HEventKind::Invoke(HOp::Put { key: key(), value: val("v1") }));
    h.push(200, 0, 0, HEventKind::Ok(HResult::Write { version: 1, ts: 150 }));
    h.push(300, 0, 1, HEventKind::Invoke(HOp::Put { key: key(), value: val("v2") }));
    h.push(400, 0, 1, HEventKind::Ok(HResult::Write { version: 2, ts: 350 }));
    h.push(500, 1, 0, HEventKind::Invoke(HOp::Get { key: key(), cons: HCons::Strong }));
    h.push(600, 1, 0, HEventKind::Ok(HResult::Read { state: HState::Val(val("v2")), at_ts: 0 }));
    h.push(
        700,
        1,
        1,
        HEventKind::Invoke(HOp::Scan { start: Key::from(""), end: None, cons: HCons::Strong }),
    );
    h.push(800, 1, 1, HEventKind::Ok(HResult::Rows { rows: vec![(key(), val("v2"))], at_ts: 0 }));
    h.push(900, 2, 0, HEventKind::Invoke(HOp::Get { key: key(), cons: HCons::At(160) }));
    h.push(950, 2, 0, HEventKind::Ok(HResult::Read { state: HState::Val(val("v1")), at_ts: 160 }));
    h.push(960, 2, 1, HEventKind::Invoke(HOp::Get { key: key(), cons: HCons::At(160) }));
    h.push(990, 2, 1, HEventKind::Ok(HResult::Read { state: HState::Val(val("v1")), at_ts: 160 }));
    h
}

/// Replace the event at `idx` with `kind` (mutations edit in place so
/// every other constraint stays intact).
fn mutate(h: &mut History, idx: usize, kind: HEventKind) {
    h.events[idx].kind = kind;
}

#[test]
fn known_good_history_passes() {
    let v = check(&good_history());
    assert!(v.is_empty(), "clean history rejected: {v:#?}");
}

#[test]
fn lost_acked_write_is_caught() {
    // The strong scan no longer returns the key at all, though v2's ack
    // completed before the scan was invoked: an acknowledged write
    // vanished.
    let mut h = good_history();
    mutate(&mut h, 7, HEventKind::Ok(HResult::Rows { rows: vec![], at_ts: 0 }));
    let v = check(&h);
    assert!(v.iter().any(|v| v.kind == "linearizability"), "lost acked write not caught: {v:#?}");
}

#[test]
fn stale_strong_read_is_caught() {
    // The strong get observes v1 after v2's ack already completed —
    // a strong read served from the past.
    let mut h = good_history();
    mutate(&mut h, 5, HEventKind::Ok(HResult::Read { state: HState::Val(val("v1")), at_ts: 0 }));
    let v = check(&h);
    assert!(v.iter().any(|v| v.kind == "linearizability"), "stale strong read not caught: {v:#?}");
}

#[test]
fn torn_snapshot_cut_is_caught() {
    // Two reads of the same cut (ts=160) disagree: one sees v1, the
    // other v2. A snapshot that changes under a reader is torn.
    let mut h = good_history();
    mutate(&mut h, 11, HEventKind::Ok(HResult::Read { state: HState::Val(val("v2")), at_ts: 160 }));
    let v = check(&h);
    assert!(
        v.iter().any(|v| v.kind == "torn-snapshot-cut"),
        "torn snapshot cut not caught: {v:#?}"
    );
}

#[test]
fn duplicate_scan_row_is_caught() {
    // The scan returns the same row twice — merge bugs across
    // memtable/SST boundaries look exactly like this.
    let mut h = good_history();
    mutate(
        &mut h,
        7,
        HEventKind::Ok(HResult::Rows {
            rows: vec![(key(), val("v2")), (key(), val("v2"))],
            at_ts: 0,
        }),
    );
    let v = check(&h);
    assert!(v.iter().any(|v| v.kind == "scan-shape"), "duplicate scan row not caught: {v:#?}");
}
