//! The replay contract: a campaign is a pure function of its seed.
//!
//! Two runs of the same seed must produce byte-identical serialized
//! histories — that is what makes a failing seed a complete bug report
//! (no artifact to ship, no flaky reproduction: the seed *is* the
//! repro). The serialized form must also round-trip through the parser,
//! since triage tooling reads histories back from disk.

use spinnaker_common::History;
use spinnaker_nemesis::run_seed;

#[test]
fn same_seed_byte_identical_history() {
    for seed in [3u64, 11, 29] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert!(a.violations.is_empty(), "seed {seed} inconsistent: {:?}", a.violations);
        assert!(!a.stalled, "seed {seed} stalled");
        assert_eq!(
            a.history.serialize(),
            b.history.serialize(),
            "seed {seed}: two runs diverged — campaign is not deterministic"
        );
    }
}

#[test]
fn history_round_trips_through_parser() {
    let r = run_seed(5);
    let text = r.history.serialize();
    let parsed = History::parse(&text).expect("serialized history must parse");
    assert_eq!(parsed, r.history);
    assert_eq!(parsed.serialize(), text);
}
