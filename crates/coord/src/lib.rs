//! ZooKeeper-like distributed coordination service (paper §4.2, §7.1).
//!
//! Spinnaker delegates failure detection, group membership, and leader
//! election metadata to a coordination service. This crate implements the
//! subset of ZooKeeper the paper uses: a znode tree with persistent /
//! ephemeral / sequential nodes, one-shot watches, and heartbeat-based
//! session expiry. The service is a deterministic state machine
//! ([`Coord`]): every operation takes the caller's clock and returns the
//! watch deliveries it triggered, so the same code runs under the
//! discrete-event simulator and the threaded runtime.
//!
//! The real ZooKeeper is itself replicated with a Paxos-like protocol; the
//! paper (§4.2, Appendix A.1) treats it as an externally fault-tolerant
//! black box that is *not* on the read/write critical path, and so do we.
//! `spinnaker-paxos` demonstrates how its log would be replicated.

#![warn(missing_docs)]

pub mod service;

pub use service::{
    basename, parent, Coord, CoordError, CoordResult, CreateMode, Delivery, Nanos, SessionId, Stat,
    WatchEvent, Zxid,
};

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Nanos = 1_000_000_000;

    fn svc_with_session() -> (Coord, SessionId) {
        let mut c = Coord::new();
        let s = c.create_session(2 * SEC, 0);
        (c, s)
    }

    #[test]
    fn create_get_set_delete_cycle() {
        let (mut c, s) = svc_with_session();
        c.create(s, "/app", b"root".to_vec(), CreateMode::Persistent).unwrap();
        let (data, stat) = c.get_data("/app", None).unwrap();
        assert_eq!(data, b"root");
        assert_eq!(stat.version, 0);
        c.set_data(s, "/app", b"v2".to_vec()).unwrap();
        let (data, stat) = c.get_data("/app", None).unwrap();
        assert_eq!(data, b"v2");
        assert_eq!(stat.version, 1);
        c.delete(s, "/app").unwrap();
        assert!(matches!(c.get_data("/app", None), Err(CoordError::NoNode(_))));
    }

    #[test]
    fn set_data_cas_rejects_stale_versions() {
        let (mut c, s) = svc_with_session();
        c.create(s, "/table", b"v0".to_vec(), CreateMode::Persistent).unwrap();
        // Version 0: the CAS with expected=0 wins and bumps to 1.
        c.set_data_cas(s, "/table", b"v1".to_vec(), 0).unwrap();
        let (_, stat) = c.get_data("/table", None).unwrap();
        assert_eq!(stat.version, 1);
        // A second writer still holding expected=0 must lose.
        match c.set_data_cas(s, "/table", b"loser".to_vec(), 0) {
            Err(CoordError::BadVersion { expected: 0, actual: 1, .. }) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
        let (data, _) = c.get_data("/table", None).unwrap();
        assert_eq!(data, b"v1", "losing CAS left the data untouched");
        // The winner can continue from the observed version.
        c.set_data_cas(s, "/table", b"v2".to_vec(), 1).unwrap();
        assert_eq!(c.get_data("/table", None).unwrap().0, b"v2");
    }

    #[test]
    fn create_requires_parent() {
        let (mut c, s) = svc_with_session();
        assert!(matches!(
            c.create(s, "/a/b", vec![], CreateMode::Persistent),
            Err(CoordError::NoNode(_))
        ));
        c.create(s, "/a", vec![], CreateMode::Persistent).unwrap();
        c.create(s, "/a/b", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(c.get_children("/a", None).unwrap(), vec!["b"]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let (mut c, s) = svc_with_session();
        c.create(s, "/x", vec![], CreateMode::Persistent).unwrap();
        assert!(matches!(
            c.create(s, "/x", vec![], CreateMode::Persistent),
            Err(CoordError::NodeExists(_))
        ));
    }

    #[test]
    fn delete_nonempty_rejected() {
        let (mut c, s) = svc_with_session();
        c.create(s, "/a", vec![], CreateMode::Persistent).unwrap();
        c.create(s, "/a/b", vec![], CreateMode::Persistent).unwrap();
        assert!(matches!(c.delete(s, "/a"), Err(CoordError::NotEmpty(_))));
        c.delete_recursive(s, "/a").unwrap();
        assert!(c.exists("/a", None).unwrap().is_none());
    }

    #[test]
    fn bad_paths_rejected() {
        let (mut c, s) = svc_with_session();
        for p in ["noslash", "/trailing/", "/dou//ble", ""] {
            assert!(
                matches!(
                    c.create(s, p, vec![], CreateMode::Persistent),
                    Err(CoordError::BadPath(_))
                ),
                "path {p:?}"
            );
        }
    }

    #[test]
    fn sequential_znodes_get_unique_increasing_suffixes() {
        let (mut c, s) = svc_with_session();
        c.create(s, "/r", vec![], CreateMode::Persistent).unwrap();
        c.create(s, "/r/candidates", vec![], CreateMode::Persistent).unwrap();
        let (p1, _) = c
            .create(s, "/r/candidates/c-", b"10".to_vec(), CreateMode::EphemeralSequential)
            .unwrap();
        let (p2, _) = c
            .create(s, "/r/candidates/c-", b"20".to_vec(), CreateMode::EphemeralSequential)
            .unwrap();
        assert_eq!(p1, "/r/candidates/c-0000000000");
        assert_eq!(p2, "/r/candidates/c-0000000001");
        assert!(p1 < p2, "sequence numbers break ties in election");
        let stat = c.exists(&p2, None).unwrap().unwrap();
        assert_eq!(stat.sequence, Some(1));
    }

    #[test]
    fn ephemerals_vanish_on_session_expiry_and_watches_fire() {
        let mut c = Coord::new();
        let leader = c.create_session(2 * SEC, 0);
        let observer = c.create_session(2 * SEC, 0);
        c.create(leader, "/r", vec![], CreateMode::Persistent).unwrap();
        c.create(leader, "/r/leader", b"node-a".to_vec(), CreateMode::Ephemeral).unwrap();
        // Observer watches the leader node (the Fig. 7 pattern).
        c.get_data("/r/leader", Some(observer)).unwrap();

        // Heartbeats keep the session alive...
        c.heartbeat(leader, SEC).unwrap();
        c.heartbeat(observer, SEC).unwrap();
        assert!(c.tick(2 * SEC).is_empty());
        c.heartbeat(observer, 2 * SEC).unwrap();
        // ...then the leader goes silent and times out.
        let events = c.tick(4 * SEC);
        assert!(events.contains(&(leader, WatchEvent::SessionExpired)));
        assert!(events.contains(&(observer, WatchEvent::Deleted("/r/leader".into()))));
        assert!(c.exists("/r/leader", None).unwrap().is_none());
        assert!(!c.session_alive(leader));
    }

    #[test]
    fn watches_are_one_shot() {
        let (mut c, s) = svc_with_session();
        let w = c.create_session(10 * SEC, 0);
        c.create(s, "/n", vec![], CreateMode::Persistent).unwrap();
        c.get_data("/n", Some(w)).unwrap();
        let ev1 = c.set_data(s, "/n", b"1".to_vec()).unwrap();
        assert_eq!(ev1, vec![(w, WatchEvent::DataChanged("/n".into()))]);
        let ev2 = c.set_data(s, "/n", b"2".to_vec()).unwrap();
        assert!(ev2.is_empty(), "watch must not fire twice without re-registration");
    }

    #[test]
    fn child_watches_fire_on_create_and_delete() {
        let (mut c, s) = svc_with_session();
        let w = c.create_session(10 * SEC, 0);
        c.create(s, "/r", vec![], CreateMode::Persistent).unwrap();
        c.get_children("/r", Some(w)).unwrap();
        let (_, ev) = c.create(s, "/r/a", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(ev, vec![(w, WatchEvent::ChildrenChanged("/r".into()))]);
        c.get_children("/r", Some(w)).unwrap();
        let ev = c.delete(s, "/r/a").unwrap();
        assert!(ev.contains(&(w, WatchEvent::ChildrenChanged("/r".into()))));
    }

    #[test]
    fn exists_watch_fires_on_creation() {
        let (mut c, s) = svc_with_session();
        let w = c.create_session(10 * SEC, 0);
        assert!(c.exists("/future", Some(w)).unwrap().is_none());
        let (_, ev) = c.create(s, "/future", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(ev, vec![(w, WatchEvent::Created("/future".into()))]);
    }

    #[test]
    fn expired_session_cannot_mutate() {
        let mut c = Coord::new();
        let s = c.create_session(SEC, 0);
        c.tick(3 * SEC);
        assert!(matches!(
            c.create(s, "/x", vec![], CreateMode::Persistent),
            Err(CoordError::SessionExpired(_))
        ));
        assert!(matches!(c.heartbeat(s, 4 * SEC), Err(CoordError::SessionExpired(_))));
    }

    #[test]
    fn ephemerals_cannot_have_children() {
        let (mut c, s) = svc_with_session();
        c.create(s, "/e", vec![], CreateMode::Ephemeral).unwrap();
        assert!(matches!(
            c.create(s, "/e/child", vec![], CreateMode::Persistent),
            Err(CoordError::NoChildrenForEphemerals(_))
        ));
    }

    #[test]
    fn close_session_is_graceful_expiry() {
        let mut c = Coord::new();
        let s = c.create_session(10 * SEC, 0);
        c.create(s, "/tmp-node", vec![], CreateMode::Ephemeral).unwrap();
        let events = c.close_session(s);
        assert!(events.contains(&(s, WatchEvent::SessionExpired)));
        assert!(c.exists("/tmp-node", None).unwrap().is_none());
    }

    #[test]
    fn dead_sessions_receive_no_watch_events() {
        let mut c = Coord::new();
        let alive = c.create_session(10 * SEC, 0);
        let doomed = c.create_session(SEC, 0);
        c.create(alive, "/n", vec![], CreateMode::Persistent).unwrap();
        c.get_data("/n", Some(doomed)).unwrap();
        c.tick(5 * SEC); // doomed expires
        let ev = c.set_data(alive, "/n", b"x".to_vec()).unwrap();
        assert!(ev.is_empty(), "expired watcher must not receive events");
    }

    #[test]
    fn election_pattern_end_to_end() {
        // The full Fig. 7 dance at the coordination-service level: three
        // candidates advertise last-LSNs in sequential ephemerals; everyone
        // can deterministically pick the max; the loser learns the leader
        // by reading /r/leader; when the leader dies the others are woken.
        let mut c = Coord::new();
        let (a, b, d) = (
            c.create_session(2 * SEC, 0),
            c.create_session(2 * SEC, 0),
            c.create_session(2 * SEC, 0),
        );
        let admin = c.create_session(60 * SEC, 0);
        c.create(admin, "/r", vec![], CreateMode::Persistent).unwrap();
        c.create(admin, "/r/candidates", vec![], CreateMode::Persistent).unwrap();

        c.create(a, "/r/candidates/n-", b"1.20".to_vec(), CreateMode::EphemeralSequential).unwrap();
        c.create(b, "/r/candidates/n-", b"1.21".to_vec(), CreateMode::EphemeralSequential).unwrap();
        let kids = c.get_children("/r/candidates", None).unwrap();
        assert_eq!(kids.len(), 2);
        // Max advertised LSN wins: session b.
        let winner = kids
            .iter()
            .map(|k| c.get_data(&format!("/r/candidates/{k}"), None).unwrap().0)
            .max()
            .unwrap();
        assert_eq!(winner, b"1.21");
        c.create(b, "/r/leader", b"node-b".to_vec(), CreateMode::Ephemeral).unwrap();

        // The third replica comes up late, reads the leader, sets a watch.
        c.get_data("/r/leader", Some(d)).unwrap();
        c.heartbeat(a, SEC).unwrap();
        c.heartbeat(d, SEC).unwrap();
        c.heartbeat(a, 2 * SEC).unwrap();
        c.heartbeat(d, 2 * SEC).unwrap();
        // b dies; d must be woken by the leader-znode deletion.
        let events = c.tick(3 * SEC + 1);
        assert!(events.contains(&(d, WatchEvent::Deleted("/r/leader".into()))));
        // b's candidate znode is gone too; a new round can start.
        assert_eq!(c.get_children("/r/candidates", None).unwrap().len(), 1);
    }

    #[test]
    fn path_helpers() {
        assert_eq!(parent("/a/b/c"), "/a/b");
        assert_eq!(parent("/a"), "/");
        assert_eq!(basename("/a/b/c"), "c");
        assert_eq!(basename("/a"), "a");
    }

    #[test]
    fn zxid_increases_on_mutations_only() {
        let (mut c, s) = svc_with_session();
        let z0 = c.zxid();
        c.create(s, "/m", vec![], CreateMode::Persistent).unwrap();
        let z1 = c.zxid();
        assert!(z1 > z0);
        c.get_data("/m", None).unwrap();
        assert_eq!(c.zxid(), z1, "reads do not bump zxid");
    }
}
