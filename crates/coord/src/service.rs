//! The coordination service state machine.
//!
//! A deterministic, single-struct implementation of the ZooKeeper subset
//! Spinnaker relies on (paper §4.2/§7.1): a tree of znodes addressed by
//! slash-separated paths, persistent/ephemeral × plain/sequential create
//! modes, one-shot watches on data and children, and sessions that expire
//! when heartbeats stop — deleting the session's ephemerals and firing
//! watches, which is exactly the failure-detection signal leader election
//! consumes.
//!
//! All methods take the current time explicitly and return any watch
//! events they triggered; the surrounding runtime (simulator or threads)
//! delivers those events to clients. This keeps the service fully
//! deterministic and runtime-agnostic.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Session identifier handed out by [`Coord::create_session`].
pub type SessionId = u64;

/// Monotonic transaction id (ZooKeeper's zxid).
pub type Zxid = u64;

/// Nanoseconds since an arbitrary epoch; supplied by the caller's clock.
pub type Nanos = u64;

/// Znode creation mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CreateMode {
    /// Survives session loss; deleted only explicitly.
    Persistent,
    /// Deleted automatically when the creating session dies (§7.1).
    Ephemeral,
    /// Persistent, with a unique monotonically increasing suffix.
    PersistentSequential,
    /// Ephemeral + sequential (used by `/r/candidates`, Fig. 7).
    EphemeralSequential,
}

impl CreateMode {
    fn is_ephemeral(self) -> bool {
        matches!(self, CreateMode::Ephemeral | CreateMode::EphemeralSequential)
    }

    fn is_sequential(self) -> bool {
        matches!(self, CreateMode::PersistentSequential | CreateMode::EphemeralSequential)
    }
}

/// Errors returned by coordination operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoordError {
    /// The path (or its parent) does not exist.
    NoNode(String),
    /// A node already exists at the path.
    NodeExists(String),
    /// Delete of a node that still has children.
    NotEmpty(String),
    /// The session is unknown or has expired.
    SessionExpired(SessionId),
    /// Malformed path.
    BadPath(String),
    /// Ephemeral znodes cannot have children (as in ZooKeeper).
    NoChildrenForEphemerals(String),
    /// Conditional `set_data_cas` lost the race: the znode's data version
    /// no longer matches the expected one.
    BadVersion {
        /// The znode whose update was rejected.
        path: String,
        /// Version the caller expected.
        expected: u64,
        /// Version actually stored.
        actual: u64,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node: {p}"),
            CoordError::NodeExists(p) => write!(f, "node exists: {p}"),
            CoordError::NotEmpty(p) => write!(f, "node not empty: {p}"),
            CoordError::SessionExpired(s) => write!(f, "session {s} expired"),
            CoordError::BadPath(p) => write!(f, "bad path: {p}"),
            CoordError::NoChildrenForEphemerals(p) => {
                write!(f, "ephemerals cannot have children: {p}")
            }
            CoordError::BadVersion { path, expected, actual } => {
                write!(f, "bad version on {path}: expected {expected}, found {actual}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// Result alias for coordination calls.
pub type CoordResult<T> = Result<T, CoordError>;

/// A watch notification. Watches are one-shot: after delivery the client
/// must re-register (same as ZooKeeper).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WatchEvent {
    /// Node created at the path (fires exists-watches).
    Created(String),
    /// Node deleted (fires data- and exists-watches on the node, and the
    /// parent's child-watches).
    Deleted(String),
    /// Node data changed.
    DataChanged(String),
    /// The node's set of children changed.
    ChildrenChanged(String),
    /// The session was expired by the service.
    SessionExpired,
}

/// A watch event addressed to the session that registered it.
pub type Delivery = (SessionId, WatchEvent);

/// Metadata of a znode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stat {
    /// zxid of the create.
    pub czxid: Zxid,
    /// zxid of the last data modification.
    pub mzxid: Zxid,
    /// Data version (bumped by `set_data`).
    pub version: u64,
    /// Owning session for ephemerals.
    pub ephemeral_owner: Option<SessionId>,
    /// Sequence number when created sequentially.
    pub sequence: Option<u64>,
}

#[derive(Clone, Debug)]
struct Znode {
    data: Vec<u8>,
    stat: Stat,
    children: BTreeSet<String>,
    seq_counter: u64,
}

#[derive(Clone, Copy)]
enum WatchKind {
    Data,
    Child,
    Exists,
}

#[derive(Clone, Debug)]
struct Session {
    last_heartbeat: Nanos,
    timeout: Nanos,
    ephemerals: BTreeSet<String>,
    expired: bool,
}

/// The coordination service.
pub struct Coord {
    nodes: BTreeMap<String, Znode>,
    sessions: HashMap<SessionId, Session>,
    next_session: SessionId,
    zxid: Zxid,
    data_watches: HashMap<String, BTreeSet<SessionId>>,
    child_watches: HashMap<String, BTreeSet<SessionId>>,
    exists_watches: HashMap<String, BTreeSet<SessionId>>,
    /// Latest time the service itself has observed (sweep ticks and
    /// session creation). Heartbeat liveness is judged against *this*
    /// clock, like real ZooKeeper stamps liveness at the server on
    /// receipt — a client with a skewed clock must not look dead.
    observed: Nanos,
}

fn validate(path: &str) -> CoordResult<()> {
    if path == "/" {
        return Ok(());
    }
    if !path.starts_with('/') || path.ends_with('/') || path.contains("//") {
        return Err(CoordError::BadPath(path.to_string()));
    }
    Ok(())
}

/// Parent path of `path` (`"/a/b"` → `"/a"`, `"/a"` → `"/"`).
pub fn parent(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "/",
    }
}

/// Final component of `path`.
pub fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

impl Default for Coord {
    fn default() -> Coord {
        Coord::new()
    }
}

impl Coord {
    /// Fresh service containing only the root node.
    pub fn new() -> Coord {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            "/".to_string(),
            Znode {
                data: Vec::new(),
                stat: Stat {
                    czxid: 0,
                    mzxid: 0,
                    version: 0,
                    ephemeral_owner: None,
                    sequence: None,
                },
                children: BTreeSet::new(),
                seq_counter: 0,
            },
        );
        Coord {
            nodes,
            sessions: HashMap::new(),
            next_session: 1,
            zxid: 0,
            data_watches: HashMap::new(),
            child_watches: HashMap::new(),
            exists_watches: HashMap::new(),
            observed: 0,
        }
    }

    // ------------------------------------------------------------ sessions

    /// Open a session with the given heartbeat timeout.
    pub fn create_session(&mut self, timeout: Nanos, now: Nanos) -> SessionId {
        self.observed = self.observed.max(now);
        let now = self.observed;
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            id,
            Session { last_heartbeat: now, timeout, ephemerals: BTreeSet::new(), expired: false },
        );
        id
    }

    /// Refresh a session's liveness. The stamp is taken at the service
    /// (receive time), not from the caller's clock: a node with a skewed
    /// protocol clock still heartbeats *on time* as the service sees it,
    /// so skew alone must never expire a live session.
    pub fn heartbeat(&mut self, session: SessionId, now: Nanos) -> CoordResult<()> {
        let stamp = now.max(self.observed);
        let s = self.live_session(session)?;
        s.last_heartbeat = s.last_heartbeat.max(stamp);
        Ok(())
    }

    /// Expire sessions whose heartbeats stopped. Returns watch events plus
    /// a `SessionExpired` delivery for each expired session.
    pub fn tick(&mut self, now: Nanos) -> Vec<Delivery> {
        self.observed = self.observed.max(now);
        let expired: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.expired && now.saturating_sub(s.last_heartbeat) > s.timeout)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::new();
        for id in expired {
            out.extend(self.expire_session(id));
        }
        out
    }

    /// Close a session (graceful), deleting its ephemerals.
    pub fn close_session(&mut self, session: SessionId) -> Vec<Delivery> {
        if self.sessions.contains_key(&session) {
            self.expire_session(session)
        } else {
            Vec::new()
        }
    }

    /// Kill a session immediately (used by chaos tests to model a node
    /// whose heartbeats the service has given up on).
    pub fn expire_session(&mut self, session: SessionId) -> Vec<Delivery> {
        let Some(s) = self.sessions.get_mut(&session) else {
            return Vec::new();
        };
        if s.expired {
            return Vec::new();
        }
        s.expired = true;
        let ephemerals: Vec<String> = s.ephemerals.iter().cloned().collect();
        let mut out = vec![(session, WatchEvent::SessionExpired)];
        for path in ephemerals {
            // Ephemerals are leaves (no children allowed), so this cannot
            // fail with NotEmpty.
            if let Ok(events) = self.delete_inner(&path) {
                out.extend(events);
            }
        }
        // Drop any watches the dead session still holds.
        for watches in [&mut self.data_watches, &mut self.child_watches, &mut self.exists_watches] {
            for set in watches.values_mut() {
                set.remove(&session);
            }
        }
        out
    }

    /// Whether the session is alive.
    pub fn session_alive(&self, session: SessionId) -> bool {
        self.sessions.get(&session).is_some_and(|s| !s.expired)
    }

    fn live_session(&mut self, session: SessionId) -> CoordResult<&mut Session> {
        match self.sessions.get_mut(&session) {
            Some(s) if !s.expired => Ok(s),
            _ => Err(CoordError::SessionExpired(session)),
        }
    }

    // ------------------------------------------------------------- writes

    /// Create a znode. Returns the actual path (with the sequence suffix
    /// for sequential modes) and any watch deliveries.
    pub fn create(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
        mode: CreateMode,
    ) -> CoordResult<(String, Vec<Delivery>)> {
        validate(path)?;
        self.live_session(session)?;
        let parent_path = parent(path).to_string();
        {
            let parent_node = self
                .nodes
                .get(&parent_path)
                .ok_or_else(|| CoordError::NoNode(parent_path.clone()))?;
            if parent_node.stat.ephemeral_owner.is_some() {
                return Err(CoordError::NoChildrenForEphemerals(parent_path.clone()));
            }
        }

        let actual_path = if mode.is_sequential() {
            let parent_node = self.nodes.get_mut(&parent_path).expect("checked above");
            let seq = parent_node.seq_counter;
            parent_node.seq_counter += 1;
            format!("{path}{seq:010}")
        } else {
            path.to_string()
        };
        if self.nodes.contains_key(&actual_path) {
            return Err(CoordError::NodeExists(actual_path));
        }

        self.zxid += 1;
        let seq = if mode.is_sequential() {
            Some(self.nodes.get(&parent_path).expect("parent").seq_counter - 1)
        } else {
            None
        };
        let owner = mode.is_ephemeral().then_some(session);
        self.nodes.insert(
            actual_path.clone(),
            Znode {
                data,
                stat: Stat {
                    czxid: self.zxid,
                    mzxid: self.zxid,
                    version: 0,
                    ephemeral_owner: owner,
                    sequence: seq,
                },
                children: BTreeSet::new(),
                seq_counter: 0,
            },
        );
        let name = basename(&actual_path).to_string();
        self.nodes.get_mut(&parent_path).expect("parent").children.insert(name);
        if mode.is_ephemeral() {
            self.live_session(session)?.ephemerals.insert(actual_path.clone());
        }

        let mut events =
            self.fire(WatchKind::Exists, &actual_path, || WatchEvent::Created(actual_path.clone()));
        events.extend(self.fire(WatchKind::Child, &parent_path, || {
            WatchEvent::ChildrenChanged(parent_path.clone())
        }));
        Ok((actual_path, events))
    }

    /// Delete a znode (must have no children).
    pub fn delete(&mut self, session: SessionId, path: &str) -> CoordResult<Vec<Delivery>> {
        validate(path)?;
        self.live_session(session)?;
        self.delete_inner(path)
    }

    fn delete_inner(&mut self, path: &str) -> CoordResult<Vec<Delivery>> {
        let node = self.nodes.get(path).ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        if !node.children.is_empty() {
            return Err(CoordError::NotEmpty(path.to_string()));
        }
        let owner = node.stat.ephemeral_owner;
        self.nodes.remove(path);
        let parent_path = parent(path).to_string();
        if let Some(p) = self.nodes.get_mut(&parent_path) {
            p.children.remove(basename(path));
        }
        if let Some(owner) = owner {
            if let Some(s) = self.sessions.get_mut(&owner) {
                s.ephemerals.remove(path);
            }
        }
        let mut events = self.fire(WatchKind::Data, path, || WatchEvent::Deleted(path.to_string()));
        events.extend(self.fire(WatchKind::Exists, path, || WatchEvent::Deleted(path.to_string())));
        events.extend(self.fire(WatchKind::Child, &parent_path, || {
            WatchEvent::ChildrenChanged(parent_path.clone())
        }));
        // A deleted node's child watches fire as Deleted too (ZK semantics).
        events.extend(self.fire(WatchKind::Child, path, || WatchEvent::Deleted(path.to_string())));
        Ok(events)
    }

    /// Replace a znode's data.
    pub fn set_data(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
    ) -> CoordResult<Vec<Delivery>> {
        self.set_data_inner(session, path, data, None)
    }

    /// Replace a znode's data only if its current data version equals
    /// `expected_version` (ZooKeeper's conditional `setData`). This is the
    /// primitive behind safe read-modify-write of shared metadata like the
    /// range table: two racing writers cannot both win.
    pub fn set_data_cas(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
        expected_version: u64,
    ) -> CoordResult<Vec<Delivery>> {
        self.set_data_inner(session, path, data, Some(expected_version))
    }

    fn set_data_inner(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
        expected_version: Option<u64>,
    ) -> CoordResult<Vec<Delivery>> {
        validate(path)?;
        self.live_session(session)?;
        let node = self.nodes.get_mut(path).ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        if let Some(expected) = expected_version {
            if node.stat.version != expected {
                return Err(CoordError::BadVersion {
                    path: path.to_string(),
                    expected,
                    actual: node.stat.version,
                });
            }
        }
        self.zxid += 1;
        let zxid = self.zxid;
        let node = self.nodes.get_mut(path).expect("checked above");
        node.data = data;
        node.stat.mzxid = zxid;
        node.stat.version += 1;
        Ok(self.fire(WatchKind::Data, path, || WatchEvent::DataChanged(path.to_string())))
    }

    /// Delete a node if present; used for "clean up old state" (Fig. 7
    /// line 1). Recursively removes children.
    pub fn delete_recursive(
        &mut self,
        session: SessionId,
        path: &str,
    ) -> CoordResult<Vec<Delivery>> {
        validate(path)?;
        self.live_session(session)?;
        if !self.nodes.contains_key(path) {
            return Ok(Vec::new());
        }
        let mut events = Vec::new();
        let children: Vec<String> = self
            .nodes
            .get(path)
            .map(|n| n.children.iter().map(|c| format!("{path}/{c}")).collect())
            .unwrap_or_default();
        for child in children {
            events.extend(self.delete_recursive(session, &child)?);
        }
        events.extend(self.delete_inner(path)?);
        Ok(events)
    }

    // -------------------------------------------------------------- reads

    /// Read data and stat, optionally registering a one-shot data watch.
    pub fn get_data(
        &mut self,
        path: &str,
        watch: Option<SessionId>,
    ) -> CoordResult<(Vec<u8>, Stat)> {
        validate(path)?;
        let node = self.nodes.get(path).ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        let out = (node.data.clone(), node.stat.clone());
        if let Some(session) = watch {
            self.data_watches.entry(path.to_string()).or_default().insert(session);
        }
        Ok(out)
    }

    /// Child names (sorted), optionally registering a one-shot child watch.
    pub fn get_children(
        &mut self,
        path: &str,
        watch: Option<SessionId>,
    ) -> CoordResult<Vec<String>> {
        validate(path)?;
        let node = self.nodes.get(path).ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        let out = node.children.iter().cloned().collect();
        if let Some(session) = watch {
            self.child_watches.entry(path.to_string()).or_default().insert(session);
        }
        Ok(out)
    }

    /// Whether a node exists, optionally registering a one-shot
    /// exists-watch (fires on create, delete, or data change).
    pub fn exists(&mut self, path: &str, watch: Option<SessionId>) -> CoordResult<Option<Stat>> {
        validate(path)?;
        let stat = self.nodes.get(path).map(|n| n.stat.clone());
        if let Some(session) = watch {
            self.exists_watches.entry(path.to_string()).or_default().insert(session);
        }
        Ok(stat)
    }

    /// Current zxid (for tests and diagnostics).
    pub fn zxid(&self) -> Zxid {
        self.zxid
    }

    fn fire(
        &mut self,
        kind: WatchKind,
        path: &str,
        event: impl Fn() -> WatchEvent,
    ) -> Vec<Delivery> {
        // One-shot semantics: registrations are consumed on delivery.
        let watchers = {
            let map = match kind {
                WatchKind::Data => &mut self.data_watches,
                WatchKind::Child => &mut self.child_watches,
                WatchKind::Exists => &mut self.exists_watches,
            };
            map.remove(path)
        };
        let Some(watchers) = watchers else {
            return Vec::new();
        };
        watchers.into_iter().filter(|s| self.session_alive(*s)).map(|s| (s, event())).collect()
    }
}
