//! Property tests: WAL replay after a crash reproduces exactly the synced
//! prefix, regardless of where the crash falls.

use std::sync::Arc;

use proptest::prelude::*;

use spinnaker_common::vfs::MemVfs;
use spinnaker_common::{op, Lsn, RangeId};
use spinnaker_wal::{LogRecord, Wal, WalOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Append records across several cohorts with random sync points, then
    /// crash: exactly the records appended before the last sync survive,
    /// per cohort, in LSN order.
    #[test]
    fn replay_equals_synced_prefix(
        script in proptest::collection::vec((0u32..3, any::<bool>()), 1..80),
        segment_bytes in 128u64..4096,
    ) {
        let vfs = MemVfs::new();
        let mut wal = Wal::open(
            Arc::new(vfs.clone()),
            WalOptions { dir: "wal".into(), segment_bytes },
        ).unwrap();
        let mut seqs = [0u64; 3];
        let mut synced: [Vec<u64>; 3] = Default::default();
        let mut unsynced: [Vec<u64>; 3] = Default::default();

        for (cohort, sync_after) in &script {
            let c = *cohort as usize;
            seqs[c] += 1;
            wal.append(&LogRecord::write(
                RangeId(*cohort),
                Lsn::new(1, seqs[c]),
                op::put(&format!("k{}", seqs[c]), "c", "v"),
            )).unwrap();
            unsynced[c].push(seqs[c]);
            if *sync_after {
                wal.sync().unwrap();
                for i in 0..3 {
                    let moved = std::mem::take(&mut unsynced[i]);
                    synced[i].extend(moved);
                }
            }
        }

        // Segment rollover syncs the sealed segment: records in sealed
        // segments are durable even without an explicit sync. To keep the
        // model simple we only assert (a) the synced prefix survives and
        // (b) nothing *beyond* what was appended appears, and (c) survivors
        // are a prefix in LSN order.
        let reopened = Wal::open(Arc::new(vfs.crash_clone()), WalOptions {
            dir: "wal".into(), segment_bytes,
        }).unwrap();
        for c in 0..3u32 {
            let got: Vec<u64> = reopened
                .read_range(RangeId(c), Lsn::ZERO, Lsn::MAX)
                .unwrap()
                .into_iter()
                .map(|(l, _)| l.seq())
                .collect();
            let want_min = &synced[c as usize];
            prop_assert!(got.len() >= want_min.len(),
                "cohort {}: lost synced records: got {:?} want at least {:?}", c, got, want_min);
            prop_assert!(got.len() <= seqs[c as usize] as usize,
                "cohort {}: phantom records", c);
            // Survivors are exactly 1..=n for some n (a prefix, in order).
            for (i, seq) in got.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64 + 1, "cohort {} out of order", c);
            }
            let st = reopened.state(RangeId(c));
            prop_assert_eq!(st.last_lsn.seq(), got.len() as u64);
        }
    }

    /// Logical truncation + checkpoints survive crash-restart in any
    /// combination.
    #[test]
    fn truncation_and_checkpoint_compose(
        n in 5u64..40,
        truncate_from in 2u64..40,
        checkpoint_at in 0u64..20,
    ) {
        let vfs = MemVfs::new();
        let mut wal = Wal::open(Arc::new(vfs.clone()), WalOptions::default()).unwrap();
        for i in 1..=n {
            wal.append(&LogRecord::write(RangeId(0), Lsn::new(1, i), op::put("k", "c", "v"))).unwrap();
        }
        wal.sync().unwrap();
        let truncate: Vec<Lsn> = (truncate_from..=n).map(|i| Lsn::new(1, i)).collect();
        wal.truncate_logically(RangeId(0), &truncate).unwrap();
        let cp = checkpoint_at.min(truncate_from.saturating_sub(1));
        if cp > 0 {
            wal.set_checkpoint(RangeId(0), Lsn::new(1, cp)).unwrap();
        }

        let reopened = Wal::open(Arc::new(vfs.crash_clone()), WalOptions::default()).unwrap();
        let survivors: Vec<u64> = reopened
            .read_range(RangeId(0), Lsn::new(1, cp), Lsn::MAX)
            .unwrap()
            .into_iter()
            .map(|(l, _)| l.seq())
            .collect();
        let expected: Vec<u64> = (cp + 1..truncate_from.min(n + 1)).collect();
        prop_assert_eq!(survivors, expected);
    }
}
