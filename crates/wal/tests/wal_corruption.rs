//! Crash-safety regression tests for WAL recovery (contract rule C1).
//!
//! Every fault shape a real disk can produce — a torn tail, a bit flip,
//! an absurd length prefix, an injected device error — must surface as a
//! typed [`Error`], never as a panic, and must never lose acknowledged
//! (synced) records.

use std::sync::Arc;

use spinnaker_common::vfs::{FaultPlan, FaultVfs, MemVfs, Vfs};
use spinnaker_common::{op, Error, Lsn, RangeId};
use spinnaker_wal::{Wal, WalOptions};

const R: RangeId = RangeId(7);

fn opts() -> WalOptions {
    WalOptions { dir: "wal".into(), segment_bytes: 8 << 20 }
}

fn wal_on(vfs: &MemVfs) -> Wal {
    Wal::open(Arc::new(vfs.clone()), opts()).unwrap()
}

fn rec(seq: u64) -> spinnaker_wal::LogRecord {
    spinnaker_wal::LogRecord::write(R, Lsn::new(1, seq), op::put(&format!("k{seq}"), "c", "v"))
}

/// Path of the first segment the log writes to on a fresh VFS.
const SEG1: &str = "wal/seg-0000000001.log";

/// Write `n` records, force them, and drop the log so the segment's
/// contents are final.
fn seed(vfs: &MemVfs, n: u64) {
    let mut wal = wal_on(vfs);
    for seq in 1..=n {
        wal.append(&rec(seq)).unwrap();
    }
    wal.sync().unwrap();
}

fn flip_byte(vfs: &MemVfs, path: &str, offset_from_end: usize) {
    let mut data = vfs.read_all(path).unwrap();
    let off = data.len() - 1 - offset_from_end;
    data[off] ^= 0x40;
    vfs.write_atomic(path, &data).unwrap();
}

#[test]
fn torn_partial_frame_at_the_tail_is_tolerated() {
    let vfs = MemVfs::new();
    seed(&vfs, 3);
    // A crash mid-append leaves a prefix of a frame header behind.
    let mut data = vfs.read_all(SEG1).unwrap();
    data.extend_from_slice(&[0x12, 0x34, 0x56]);
    vfs.write_atomic(SEG1, &data).unwrap();

    let wal = wal_on(&vfs);
    assert_eq!(wal.state(R).last_lsn, Lsn::new(1, 3));
    assert_eq!(wal.read_range(R, Lsn::new(0, 0), Lsn::new(1, 3)).unwrap().len(), 3);
}

#[test]
fn oversize_length_prefix_is_torn_not_an_allocation() {
    let vfs = MemVfs::new();
    seed(&vfs, 2);
    // A frame header claiming a ~4 GiB record: recovery must classify it
    // as torn (it exceeds MAX_RECORD_BYTES) rather than try to read it.
    let mut data = vfs.read_all(SEG1).unwrap();
    data.extend_from_slice(&[0xff; 16]);
    vfs.write_atomic(SEG1, &data).unwrap();

    let wal = wal_on(&vfs);
    assert_eq!(wal.state(R).last_lsn, Lsn::new(1, 2));
}

#[test]
fn bit_flip_in_the_newest_segment_truncates_at_the_flip() {
    let vfs = MemVfs::new();
    seed(&vfs, 3);
    // Flip a bit inside the last record's body: its CRC no longer
    // matches, so recovery stops there — records 1..=2 survive, the
    // damaged (hence never-trustworthy) record 3 is dropped.
    flip_byte(&vfs, SEG1, 0);

    let wal = wal_on(&vfs);
    assert_eq!(wal.state(R).last_lsn, Lsn::new(1, 2));
    assert_eq!(wal.read_range(R, Lsn::new(0, 0), Lsn::new(1, 2)).unwrap().len(), 2);
}

#[test]
fn bit_flip_in_a_sealed_segment_is_reported_as_corruption() {
    let vfs = MemVfs::new();
    seed(&vfs, 3);
    // Reopening rolls to a fresh segment, sealing segment 1.
    drop(wal_on(&vfs));
    flip_byte(&vfs, SEG1, 0);

    match Wal::open(Arc::new(vfs.clone()), opts()).err() {
        Some(Error::Corruption(msg)) => {
            assert!(msg.contains("sealed segment"), "unexpected message: {msg}");
        }
        other => panic!("expected Corruption, got {other:?}"),
    }
}

#[test]
fn injected_sync_failure_is_typed_and_synced_prefix_survives() {
    let inner = MemVfs::new();
    let plan = FaultPlan::new();
    let faulty: Arc<dyn Vfs> = Arc::new(FaultVfs::new(Arc::new(inner.clone()), plan.clone()));

    let mut wal = Wal::open(faulty, opts()).unwrap();
    wal.append(&rec(1)).unwrap();
    wal.sync().unwrap();

    plan.fail_sync_after(1);
    wal.append(&rec(2)).unwrap();
    match wal.sync() {
        Err(Error::Io(_)) => {}
        other => panic!("expected Io error from injected fault, got {other:?}"),
    }
    assert_eq!(plan.injected(), 1);

    // The node crashes on the failed force; only the acknowledged record
    // is recovered.
    drop(wal);
    let wal = wal_on(&inner.crash_clone());
    assert_eq!(wal.state(R).last_lsn, Lsn::new(1, 1));
}

#[test]
fn injected_append_failure_is_typed_not_a_panic() {
    let inner = MemVfs::new();
    let plan = FaultPlan::new();
    let faulty: Arc<dyn Vfs> = Arc::new(FaultVfs::new(Arc::new(inner.clone()), plan.clone()));

    let mut wal = Wal::open(faulty, opts()).unwrap();
    plan.fail_append_after(1);
    match wal.append(&rec(1)) {
        Err(Error::Io(_)) => {}
        other => panic!("expected Io error from injected fault, got {other:?}"),
    }
}
