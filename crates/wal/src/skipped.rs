//! Skipped-LSN lists — logical truncation of the shared log (paper §6.1.1).
//!
//! After a leader change, log records a follower holds beyond its last
//! committed LSN may have been discarded by the new leader. They cannot be
//! *physically* truncated because the log is shared by multiple cohorts, so
//! their LSNs are remembered in a per-cohort skipped-LSN list, saved to a
//! known location on disk, and consulted by every future local recovery
//! before processing log records.

use std::collections::BTreeMap;

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::vfs::Vfs;
use spinnaker_common::{Lsn, RangeId, Result};

/// The set of logically truncated LSNs of one cohort.
///
/// "Since this list is expected to be small, it is loaded into memory
/// before recovery" — we store plain sorted LSNs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkippedLsns {
    lsns: Vec<Lsn>,
}

impl SkippedLsns {
    /// Empty list.
    pub fn new() -> SkippedLsns {
        SkippedLsns::default()
    }

    /// Record `lsn` as logically truncated.
    pub fn insert(&mut self, lsn: Lsn) {
        if let Err(pos) = self.lsns.binary_search(&lsn) {
            self.lsns.insert(pos, lsn);
        }
    }

    /// True when `lsn` must be skipped during replay.
    pub fn contains(&self, lsn: Lsn) -> bool {
        self.lsns.binary_search(&lsn).is_ok()
    }

    /// Drop entries at or below `below` (garbage collection "along with log
    /// files": once the checkpoint passes an LSN it can never be replayed).
    pub fn gc(&mut self, below: Lsn) {
        self.lsns.retain(|&l| l > below);
    }

    /// Number of remembered LSNs.
    pub fn len(&self) -> usize {
        self.lsns.len()
    }

    /// True when no LSNs are remembered.
    pub fn is_empty(&self) -> bool {
        self.lsns.is_empty()
    }

    /// Iterate the LSNs in order.
    pub fn iter(&self) -> impl Iterator<Item = Lsn> + '_ {
        self.lsns.iter().copied()
    }
}

/// All cohorts' skipped-LSN lists, persisted in one sidecar file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkippedFile {
    /// Per-cohort lists.
    pub by_cohort: BTreeMap<RangeId, SkippedLsns>,
}

impl SkippedFile {
    /// The list for `cohort`, creating it on first touch.
    pub fn cohort_mut(&mut self, cohort: RangeId) -> &mut SkippedLsns {
        self.by_cohort.entry(cohort).or_default()
    }

    /// The list for `cohort` if present.
    pub fn cohort(&self, cohort: RangeId) -> Option<&SkippedLsns> {
        self.by_cohort.get(&cohort)
    }

    /// Load from `path`, returning an empty file when absent.
    pub fn load(vfs: &dyn Vfs, path: &str) -> Result<SkippedFile> {
        if !vfs.exists(path)? {
            return Ok(SkippedFile::default());
        }
        let data = vfs.read_all(path)?;
        SkippedFile::decode(&mut data.as_slice())
    }

    /// Persist durably (write sideways + rename).
    pub fn save(&self, vfs: &dyn Vfs, path: &str) -> Result<()> {
        vfs.write_atomic(path, &self.encode_to_vec())
    }
}

impl Encode for SkippedFile {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.by_cohort.len() as u64);
        for (cohort, list) in &self.by_cohort {
            codec::put_varint(buf, cohort.0 as u64);
            codec::put_varint(buf, list.lsns.len() as u64);
            for lsn in &list.lsns {
                lsn.encode(buf);
            }
        }
    }
}

impl Decode for SkippedFile {
    fn decode(buf: &mut &[u8]) -> Result<SkippedFile> {
        let cohorts = codec::get_varint(buf)? as usize;
        let mut out = SkippedFile::default();
        for _ in 0..cohorts {
            let cohort = RangeId(codec::get_varint(buf)? as u32);
            let n = codec::get_varint(buf)? as usize;
            let mut list = SkippedLsns::new();
            for _ in 0..n {
                list.insert(Lsn::decode(buf)?);
            }
            out.by_cohort.insert(cohort, list);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinnaker_common::vfs::MemVfs;

    #[test]
    fn insert_contains_dedup() {
        let mut s = SkippedLsns::new();
        s.insert(Lsn::new(1, 22));
        s.insert(Lsn::new(1, 22));
        s.insert(Lsn::new(1, 5));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Lsn::new(1, 22)));
        assert!(!s.contains(Lsn::new(1, 21)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Lsn::new(1, 5), Lsn::new(1, 22)]);
    }

    #[test]
    fn gc_drops_old_entries() {
        let mut s = SkippedLsns::new();
        s.insert(Lsn::new(1, 5));
        s.insert(Lsn::new(1, 22));
        s.insert(Lsn::new(2, 3));
        s.gc(Lsn::new(1, 22));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Lsn::new(2, 3)]);
    }

    #[test]
    fn persistence_roundtrip() {
        let vfs = MemVfs::new();
        let mut file = SkippedFile::default();
        file.cohort_mut(RangeId(0)).insert(Lsn::new(1, 22));
        file.cohort_mut(RangeId(2)).insert(Lsn::new(3, 7));
        file.save(&vfs, "wal/skipped").unwrap();
        let loaded = SkippedFile::load(&vfs, "wal/skipped").unwrap();
        assert_eq!(loaded, file);
    }

    #[test]
    fn missing_file_loads_empty() {
        let vfs = MemVfs::new();
        let loaded = SkippedFile::load(&vfs, "wal/skipped").unwrap();
        assert!(loaded.by_cohort.is_empty());
    }

    #[test]
    fn save_survives_crash() {
        let vfs = MemVfs::new();
        let mut file = SkippedFile::default();
        file.cohort_mut(RangeId(1)).insert(Lsn::new(1, 22));
        file.save(&vfs, "wal/skipped").unwrap();
        let after = vfs.crash_clone();
        assert_eq!(SkippedFile::load(&after, "wal/skipped").unwrap(), file);
    }
}
