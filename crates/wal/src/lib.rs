//! Shared write-ahead log for the Spinnaker datastore.
//!
//! Implements the logging substrate of paper §4.1/§5/§6:
//!
//! * a single physical log per node shared by all of the node's cohorts,
//!   each cohort using its own *logical* LSN stream ([`Wal`]),
//! * length+CRC32C framed records with torn-tail detection on recovery
//!   ([`record`]),
//! * **logical truncation** via persistent skipped-LSN lists (§6.1.1) —
//!   records discarded by a new leader are hidden from all future replays
//!   without physically truncating the shared log ([`skipped`]),
//! * per-cohort checkpoints marking the local-recovery replay start
//!   ([`checkpoint`]), with segment garbage collection once every cohort
//!   has flushed past a segment,
//! * group commit for the threaded runtime ([`GroupCommitWal`]).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod group;
pub mod record;
pub mod skipped;
#[allow(clippy::module_inception)]
pub mod wal;

pub use checkpoint::Checkpoints;
pub use group::GroupCommitWal;
pub use record::{LogRecord, Payload};
pub use skipped::{SkippedFile, SkippedLsns};
pub use wal::{CohortLogState, Wal, WalOptions};
