//! Per-cohort checkpoints: the replay start position of local recovery.
//!
//! When a cohort's memtable is flushed to an SSTable, every write at or
//! below the flush LSN is durable in the LSM tree and never needs to be
//! replayed again. The checkpoint records that LSN; local recovery replays
//! `checkpoint → f.cmt` (paper §6.1) and log segments entirely below all
//! checkpoints become garbage-collectable.

use std::collections::BTreeMap;

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::vfs::Vfs;
use spinnaker_common::{Lsn, RangeId, Result};

/// Durable per-cohort checkpoint LSNs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoints {
    by_cohort: BTreeMap<RangeId, Lsn>,
}

impl Checkpoints {
    /// Empty set (all cohorts replay from the beginning).
    pub fn new() -> Checkpoints {
        Checkpoints::default()
    }

    /// The checkpoint of `cohort` (`Lsn::ZERO` when never flushed).
    pub fn get(&self, cohort: RangeId) -> Lsn {
        self.by_cohort.get(&cohort).copied().unwrap_or(Lsn::ZERO)
    }

    /// Advance the checkpoint of `cohort`. Checkpoints never move backwards.
    pub fn advance(&mut self, cohort: RangeId, lsn: Lsn) {
        let entry = self.by_cohort.entry(cohort).or_insert(Lsn::ZERO);
        if lsn > *entry {
            *entry = lsn;
        }
    }

    /// Forget `cohort` entirely (its range was dissolved or its replica
    /// departed this node): the stream will never be replayed again, so
    /// its entry stops occupying the sidecar file.
    pub fn remove(&mut self, cohort: RangeId) {
        self.by_cohort.remove(&cohort);
    }

    /// Iterate `(cohort, checkpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RangeId, Lsn)> + '_ {
        self.by_cohort.iter().map(|(&c, &l)| (c, l))
    }

    /// Load from `path`, returning an empty set when absent.
    pub fn load(vfs: &dyn Vfs, path: &str) -> Result<Checkpoints> {
        if !vfs.exists(path)? {
            return Ok(Checkpoints::default());
        }
        let data = vfs.read_all(path)?;
        Checkpoints::decode(&mut data.as_slice())
    }

    /// Persist durably (write sideways + rename).
    pub fn save(&self, vfs: &dyn Vfs, path: &str) -> Result<()> {
        vfs.write_atomic(path, &self.encode_to_vec())
    }
}

impl Encode for Checkpoints {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.by_cohort.len() as u64);
        for (cohort, lsn) in &self.by_cohort {
            codec::put_varint(buf, cohort.0 as u64);
            lsn.encode(buf);
        }
    }
}

impl Decode for Checkpoints {
    fn decode(buf: &mut &[u8]) -> Result<Checkpoints> {
        let n = codec::get_varint(buf)? as usize;
        let mut out = Checkpoints::default();
        for _ in 0..n {
            let cohort = RangeId(codec::get_varint(buf)? as u32);
            out.by_cohort.insert(cohort, Lsn::decode(buf)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinnaker_common::vfs::MemVfs;

    #[test]
    fn advance_is_monotonic() {
        let mut cp = Checkpoints::new();
        assert_eq!(cp.get(RangeId(0)), Lsn::ZERO);
        cp.advance(RangeId(0), Lsn::new(1, 10));
        cp.advance(RangeId(0), Lsn::new(1, 5)); // ignored: would move back
        assert_eq!(cp.get(RangeId(0)), Lsn::new(1, 10));
        cp.advance(RangeId(0), Lsn::new(2, 11));
        assert_eq!(cp.get(RangeId(0)), Lsn::new(2, 11));
    }

    #[test]
    fn roundtrip_and_missing() {
        let vfs = MemVfs::new();
        assert_eq!(Checkpoints::load(&vfs, "wal/cp").unwrap(), Checkpoints::new());
        let mut cp = Checkpoints::new();
        cp.advance(RangeId(0), Lsn::new(1, 3));
        cp.advance(RangeId(7), Lsn::new(4, 9));
        cp.save(&vfs, "wal/cp").unwrap();
        assert_eq!(Checkpoints::load(&vfs, "wal/cp").unwrap(), cp);
    }
}
