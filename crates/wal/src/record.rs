//! Log record types and on-disk framing.
//!
//! Each frame on disk is `[u32 len][u32 masked-crc32c][body]` (little
//! endian); the body encodes the record. Torn tails (partial frames after a
//! crash) are detected by length/CRC validation during the recovery scan.

use spinnaker_common::codec::{self, Decode, Encode};
use spinnaker_common::{crc32c, Error, Lsn, RangeId, Result, WriteOp};

/// Upper bound on a sane record body; larger lengths are treated as
/// corruption during scans.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// Frame header size: length + checksum.
pub const FRAME_HEADER: usize = 8;

/// What a log record carries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Payload {
    /// A replicated write, forced to disk before acknowledgement.
    Write(WriteOp),
    /// "Writes up to the record's LSN are committed" — the non-forced note
    /// the leader and followers log when processing a commit message (§5).
    CommitNote,
    /// A **group propose**: `n >= 2` writes replicated as one record and
    /// one consensus round. The record's LSN is the *first* op's; op `i`
    /// carries LSN `lsn + i`. The frame checksum makes the batch
    /// all-or-nothing across crashes — a torn tail drops every op or
    /// none. The index decomposes the batch back into per-LSN entries,
    /// so replay, catch-up, truncation and checkpointing all keep
    /// operating on individual `(Lsn, WriteOp)` pairs.
    Batch(Vec<WriteOp>),
}

/// One record in the shared log.
///
/// The log is shared by all cohorts on a node (§4.1): every record is
/// tagged with its cohort, and LSNs are per-cohort logical sequences.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// Cohort (key range) the record belongs to.
    pub cohort: RangeId,
    /// Per-cohort logical LSN. For [`Payload::CommitNote`] this is the
    /// last-committed LSN being noted, not a fresh sequence number.
    pub lsn: Lsn,
    /// Record payload.
    pub payload: Payload,
}

impl LogRecord {
    /// A write record.
    pub fn write(cohort: RangeId, lsn: Lsn, op: WriteOp) -> LogRecord {
        LogRecord { cohort, lsn, payload: Payload::Write(op) }
    }

    /// A group-propose record: `ops[i]` carries LSN `first + i`. A
    /// singleton batch collapses to a plain [`Payload::Write`], so the
    /// on-disk format (and every reader of it) sees batches only when
    /// there genuinely are several ops.
    ///
    /// # Panics
    /// On an empty batch.
    pub fn batch(cohort: RangeId, first: Lsn, mut ops: Vec<WriteOp>) -> LogRecord {
        assert!(!ops.is_empty(), "empty batch record");
        if let [_] = ops.as_slice() {
            if let Some(op) = ops.pop() {
                return LogRecord::write(cohort, first, op);
            }
        }
        LogRecord { cohort, lsn: first, payload: Payload::Batch(ops) }
    }

    /// A commit-note record.
    pub fn commit_note(cohort: RangeId, committed: Lsn) -> LogRecord {
        LogRecord { cohort, lsn: committed, payload: Payload::CommitNote }
    }

    /// True for records carrying writes (single or batched).
    pub fn is_write(&self) -> bool {
        matches!(self.payload, Payload::Write(_) | Payload::Batch(_))
    }

    /// How many writes this record carries (0 for commit notes).
    pub fn write_count(&self) -> u64 {
        match &self.payload {
            Payload::Write(_) => 1,
            Payload::CommitNote => 0,
            Payload::Batch(ops) => ops.len() as u64,
        }
    }

    /// The LSN of this record's last write (`lsn` itself for singles and
    /// commit notes).
    pub fn last_lsn(&self) -> Lsn {
        match &self.payload {
            Payload::Batch(ops) => {
                Lsn::new(self.lsn.epoch(), self.lsn.seq() + ops.len() as u64 - 1)
            }
            _ => self.lsn,
        }
    }
}

impl Encode for LogRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.cohort.0 as u64);
        self.lsn.encode(buf);
        match &self.payload {
            Payload::Write(op) => {
                codec::put_u8(buf, 0);
                op.encode(buf);
            }
            Payload::CommitNote => codec::put_u8(buf, 1),
            Payload::Batch(ops) => {
                codec::put_u8(buf, 2);
                codec::put_varint(buf, ops.len() as u64);
                for op in ops {
                    op.encode(buf);
                }
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(buf: &mut &[u8]) -> Result<LogRecord> {
        let cohort = RangeId(codec::get_varint_u32(buf)?);
        let lsn = Lsn::decode(buf)?;
        let payload = match codec::get_u8(buf)? {
            0 => Payload::Write(WriteOp::decode(buf)?),
            1 => Payload::CommitNote,
            2 => {
                // A WriteOp is at least a tag byte plus a 1-byte key.
                let n = codec::get_varint_len(buf, "batch ops", 2)?;
                if n < 2 {
                    return Err(Error::Codec(format!("batch record with {n} ops")));
                }
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(WriteOp::decode(buf)?);
                }
                Payload::Batch(ops)
            }
            tag => return Err(Error::Codec(format!("bad LogRecord tag {tag}"))),
        };
        Ok(LogRecord { cohort, lsn, payload })
    }
}

/// Encode a record as a complete frame (header + body).
///
/// A body longer than [`MAX_RECORD_BYTES`] is a codec error: the
/// recovery scan treats such lengths as corruption, so writing one
/// would make the record unreadable.
pub fn encode_frame(record: &LogRecord) -> Result<Vec<u8>> {
    let body = record.encode_to_vec();
    let len =
        u32::try_from(body.len()).ok().filter(|l| *l <= MAX_RECORD_BYTES).ok_or_else(|| {
            Error::Codec(format!("record body of {} bytes exceeds MAX_RECORD_BYTES", body.len()))
        })?;
    let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
    codec::put_u32(&mut frame, len);
    codec::put_u32(&mut frame, crc32c::masked(crc32c::crc32c(&body)));
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Outcome of attempting to read one frame from a buffer position.
#[derive(Debug)]
pub enum FrameRead {
    /// A valid frame: the record and the total bytes consumed.
    Record(Box<LogRecord>, usize),
    /// The buffer ends before a complete, valid frame: a torn tail if this
    /// is the end of the newest segment, corruption otherwise.
    Torn(&'static str),
}

/// Try to decode one frame from `buf`.
pub fn read_frame(buf: &[u8]) -> Result<FrameRead> {
    if buf.len() < FRAME_HEADER {
        return Ok(FrameRead::Torn("short header"));
    }
    let mut cursor = buf;
    let len32 = codec::get_u32(&mut cursor)?;
    let stored_crc = codec::get_u32(&mut cursor)?;
    if len32 > MAX_RECORD_BYTES {
        return Ok(FrameRead::Torn("implausible length"));
    }
    let len = usize::try_from(len32)
        .map_err(|_| Error::Codec(format!("frame length {len32} overflows usize")))?;
    if cursor.len() < len {
        return Ok(FrameRead::Torn("short body"));
    }
    let body = &cursor[..len];
    if crc32c::masked(crc32c::crc32c(body)) != stored_crc {
        return Ok(FrameRead::Torn("checksum mismatch"));
    }
    let mut body_cursor = body;
    let record = LogRecord::decode(&mut body_cursor)?;
    if !body_cursor.is_empty() {
        return Err(Error::Codec("trailing bytes in record body".into()));
    }
    Ok(FrameRead::Record(Box::new(record), FRAME_HEADER + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinnaker_common::op;

    fn sample() -> LogRecord {
        LogRecord::write(RangeId(2), Lsn::new(1, 9), op::put("key", "col", "value"))
    }

    #[test]
    fn frame_roundtrip() {
        let rec = sample();
        let frame = encode_frame(&rec).unwrap();
        match read_frame(&frame).unwrap() {
            FrameRead::Record(r, n) => {
                assert_eq!(*r, rec);
                assert_eq!(n, frame.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn commit_note_roundtrip() {
        let rec = LogRecord::commit_note(RangeId(1), Lsn::new(3, 44));
        let frame = encode_frame(&rec).unwrap();
        match read_frame(&frame).unwrap() {
            FrameRead::Record(r, _) => {
                assert_eq!(*r, rec);
                assert!(!r.is_write());
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_torn_not_errors() {
        let frame = encode_frame(&sample()).unwrap();
        for cut in 0..frame.len() {
            match read_frame(&frame[..cut]).unwrap() {
                FrameRead::Torn(_) => {}
                FrameRead::Record(..) => panic!("cut at {cut} decoded a record"),
            }
        }
    }

    #[test]
    fn corrupted_body_is_torn() {
        let mut frame = encode_frame(&sample()).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(read_frame(&frame).unwrap(), FrameRead::Torn("checksum mismatch")));
    }

    #[test]
    fn implausible_length_is_torn() {
        let mut frame = encode_frame(&sample()).unwrap();
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&frame).unwrap(), FrameRead::Torn("implausible length")));
    }

    #[test]
    fn batch_roundtrip_and_lsn_span() {
        let ops = vec![op::put("a", "c", "1"), op::put("b", "c", "2"), op::put("d", "c", "3")];
        let rec = LogRecord::batch(RangeId(4), Lsn::new(2, 10), ops);
        assert!(rec.is_write());
        assert_eq!(rec.write_count(), 3);
        assert_eq!(rec.last_lsn(), Lsn::new(2, 12));
        let frame = encode_frame(&rec).unwrap();
        match read_frame(&frame).unwrap() {
            FrameRead::Record(r, n) => {
                assert_eq!(*r, rec);
                assert_eq!(n, frame.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
        // Torn anywhere = the whole batch is gone, never a prefix.
        for cut in 0..frame.len() {
            assert!(matches!(read_frame(&frame[..cut]).unwrap(), FrameRead::Torn(_)));
        }
    }

    #[test]
    fn singleton_batch_collapses_to_write() {
        let rec = LogRecord::batch(RangeId(1), Lsn::new(1, 5), vec![op::put("k", "c", "v")]);
        assert!(matches!(rec.payload, Payload::Write(_)));
        assert_eq!(rec.last_lsn(), Lsn::new(1, 5));
    }

    #[test]
    fn undersized_batch_rejected_on_decode() {
        // Hand-encode a batch frame claiming one op: decode must reject
        // (singletons are required to travel as Payload::Write).
        let mut body = Vec::new();
        codec::put_varint(&mut body, 4); // cohort
        Lsn::new(1, 1).encode(&mut body);
        codec::put_u8(&mut body, 2); // batch tag
        codec::put_varint(&mut body, 1);
        op::put("k", "c", "v").encode(&mut body);
        assert!(LogRecord::decode(&mut body.as_slice()).is_err());
    }

    #[test]
    fn back_to_back_frames_parse() {
        let a = LogRecord::write(RangeId(0), Lsn::new(1, 1), op::put("a", "c", "1"));
        let b = LogRecord::commit_note(RangeId(0), Lsn::new(1, 1));
        let mut buf = encode_frame(&a).unwrap();
        buf.extend(encode_frame(&b).unwrap());
        let FrameRead::Record(first, n) = read_frame(&buf).unwrap() else { panic!() };
        assert_eq!(*first, a);
        let FrameRead::Record(second, _) = read_frame(&buf[n..]).unwrap() else { panic!() };
        assert_eq!(*second, b);
    }
}
