//! The shared write-ahead log.
//!
//! One physical log per node, shared by every cohort the node belongs to
//! (paper §4.1): "In order to share the same log, each cohort on a node
//! uses its own logical LSNs." Records are framed with length + CRC32C;
//! recovery scans all segments, tolerates a torn tail in the newest
//! segment, honours the skipped-LSN lists (logical truncation, §6.1.1),
//! and rebuilds a per-cohort index used for replay and catch-up reads.
//!
//! Force policy is the caller's: [`Wal::append`] buffers in the OS file,
//! [`Wal::sync`] forces everything appended so far — group commit batches
//! multiple appends under one sync (§5 "group commit is also used").

use std::collections::BTreeMap;

use spinnaker_common::vfs::{SharedVfs, VfsFile};
use spinnaker_common::{Error, Lsn, RangeId, Result, WriteOp};

use crate::checkpoint::Checkpoints;
use crate::record::{encode_frame, read_frame, FrameRead, LogRecord, Payload};
use crate::skipped::SkippedFile;

/// Tuning knobs for the log.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Directory (within the VFS namespace) holding segments and sidecars.
    pub dir: String,
    /// Rollover threshold: a segment is sealed once it exceeds this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions { dir: "wal".into(), segment_bytes: 8 << 20 }
    }
}

/// Durable log positions of one cohort, as seen after recovery or during
/// operation. In the paper's notation, `last_lsn` is `f.lst` and
/// `last_committed` is `f.cmt`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CohortLogState {
    /// Highest write LSN present in the log (after logical truncation).
    pub last_lsn: Lsn,
    /// Highest LSN known committed (from commit notes and checkpoints).
    pub last_committed: Lsn,
}

#[derive(Clone, Copy, Debug)]
struct RecordLoc {
    segment: u64,
    offset: u64,
    frame_len: u32,
}

#[derive(Default)]
struct CohortIndex {
    /// Non-truncated write records still available for replay.
    records: BTreeMap<Lsn, RecordLoc>,
    last_lsn: Lsn,
    last_commit_note: Lsn,
    /// Records at or below this LSN may have been dropped from the index
    /// (checkpointed and possibly garbage collected); replay starting below
    /// it must fall back to SSTable-based catch-up.
    floor: Lsn,
}

struct OpenSegment {
    id: u64,
    file: Box<dyn VfsFile>,
    bytes: u64,
}

/// The shared write-ahead log of one node.
pub struct Wal {
    vfs: SharedVfs,
    opts: WalOptions,
    sealed: Vec<u64>,
    current: OpenSegment,
    index: BTreeMap<RangeId, CohortIndex>,
    checkpoints: Checkpoints,
    skipped: SkippedFile,
    /// Live index references per segment; a sealed segment with zero
    /// references is garbage.
    seg_refs: BTreeMap<u64, usize>,
    appended_since_sync: bool,
}

impl Wal {
    fn seg_path(dir: &str, id: u64) -> String {
        format!("{dir}/seg-{id:010}.log")
    }

    fn cp_path(dir: &str) -> String {
        format!("{dir}/checkpoints")
    }

    fn skipped_path(dir: &str) -> String {
        format!("{dir}/skipped")
    }

    /// Open the log, running the recovery scan over existing segments.
    ///
    /// A torn tail in the newest segment is tolerated (records after it are
    /// lost, which is correct: they were never acknowledged); a bad frame in
    /// any older segment is reported as corruption. Appends always go to a
    /// fresh segment so a torn tail is never overwritten.
    pub fn open(vfs: SharedVfs, opts: WalOptions) -> Result<Wal> {
        let checkpoints = Checkpoints::load(vfs.as_ref(), &Self::cp_path(&opts.dir))?;
        let skipped = SkippedFile::load(vfs.as_ref(), &Self::skipped_path(&opts.dir))?;

        let mut seg_ids: Vec<u64> = Vec::new();
        for path in vfs.list(&format!("{}/seg-", opts.dir))? {
            let name = path.rsplit('/').next().unwrap_or(&path);
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seg_ids.push(id);
            }
        }
        seg_ids.sort_unstable();

        let mut index: BTreeMap<RangeId, CohortIndex> = BTreeMap::new();
        let mut seg_refs: BTreeMap<u64, usize> = BTreeMap::new();
        let last = seg_ids.last().copied();
        for &id in &seg_ids {
            let data = vfs.read_all(&Self::seg_path(&opts.dir, id))?;
            let mut offset = 0usize;
            while offset < data.len() {
                match read_frame(&data[offset..])? {
                    FrameRead::Record(rec, n) => {
                        let loc =
                            RecordLoc { segment: id, offset: offset as u64, frame_len: n as u32 };
                        Self::index_record(
                            &mut index,
                            &mut seg_refs,
                            &skipped,
                            &checkpoints,
                            &rec,
                            loc,
                        );
                        offset += n;
                    }
                    FrameRead::Torn(why) => {
                        if Some(id) == last {
                            // Torn tail of the newest segment: data past the
                            // last complete frame was never acknowledged.
                            break;
                        }
                        return Err(Error::Corruption(format!(
                            "bad frame in sealed segment {id} at offset {offset}: {why}"
                        )));
                    }
                }
            }
        }

        // Floors: nothing below a checkpoint is guaranteed replayable, and
        // anything the index never saw is likewise unavailable.
        for (cohort, cp) in checkpoints.iter() {
            let entry = index.entry(cohort).or_default();
            entry.floor = cp;
            if cp > entry.last_lsn {
                entry.last_lsn = cp;
            }
        }

        let next_id = seg_ids.last().map_or(1, |m| m + 1);
        let file = vfs.create(&Self::seg_path(&opts.dir, next_id))?;
        Ok(Wal {
            vfs,
            sealed: seg_ids,
            current: OpenSegment { id: next_id, file, bytes: 0 },
            index,
            checkpoints,
            skipped,
            seg_refs,
            appended_since_sync: false,
            opts,
        })
    }

    fn index_record(
        index: &mut BTreeMap<RangeId, CohortIndex>,
        seg_refs: &mut BTreeMap<u64, usize>,
        skipped: &SkippedFile,
        checkpoints: &Checkpoints,
        rec: &LogRecord,
        loc: RecordLoc,
    ) {
        let entry = index.entry(rec.cohort).or_default();
        match rec.payload {
            Payload::Write(_) => {
                if skipped.cohort(rec.cohort).is_some_and(|s| s.contains(rec.lsn)) {
                    return; // logically truncated: invisible to recovery
                }
                if rec.lsn > entry.last_lsn {
                    entry.last_lsn = rec.lsn;
                }
                if rec.lsn > checkpoints.get(rec.cohort) {
                    entry.records.insert(rec.lsn, loc);
                    *seg_refs.entry(loc.segment).or_insert(0) += 1;
                }
            }
            Payload::CommitNote => {
                if rec.lsn > entry.last_commit_note {
                    entry.last_commit_note = rec.lsn;
                }
            }
            // A group propose decomposes into one index entry per op, all
            // pointing at the same frame: replay, truncation, and
            // checkpointing keep operating per-LSN, and the segment gets
            // one reference per live entry so partial checkpoints release
            // it correctly.
            Payload::Batch(ref ops) => {
                let skip = skipped.cohort(rec.cohort);
                for i in 0..ops.len() as u64 {
                    let lsn = Lsn::new(rec.lsn.epoch(), rec.lsn.seq() + i);
                    if skip.is_some_and(|s| s.contains(lsn)) {
                        continue; // logically truncated: invisible to recovery
                    }
                    if lsn > entry.last_lsn {
                        entry.last_lsn = lsn;
                    }
                    if lsn > checkpoints.get(rec.cohort) {
                        entry.records.insert(lsn, loc);
                        *seg_refs.entry(loc.segment).or_insert(0) += 1;
                    }
                }
            }
        }
    }

    /// Append one record (not forced). Returns the segment id it landed in.
    pub fn append(&mut self, rec: &LogRecord) -> Result<u64> {
        let frame = encode_frame(rec)?;
        if self.current.bytes > 0
            && self.current.bytes + frame.len() as u64 > self.opts.segment_bytes
        {
            self.roll_segment()?;
        }
        let loc = RecordLoc {
            segment: self.current.id,
            offset: self.current.bytes,
            frame_len: frame.len() as u32,
        };
        self.current.file.append(&frame)?;
        self.current.bytes += frame.len() as u64;
        self.appended_since_sync = true;
        // Index updates mirror the recovery scan so a running node and a
        // restarted node agree exactly.
        let rec_for_index = rec;
        Self::index_record(
            &mut self.index,
            &mut self.seg_refs,
            &self.skipped,
            &self.checkpoints,
            rec_for_index,
            loc,
        );
        Ok(loc.segment)
    }

    /// Append several records back to back (one frame each).
    pub fn append_many(&mut self, recs: &[LogRecord]) -> Result<()> {
        for rec in recs {
            self.append(rec)?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        if self.appended_since_sync {
            self.current.file.sync()?;
            self.appended_since_sync = false;
        }
        Ok(())
    }

    fn roll_segment(&mut self) -> Result<()> {
        self.current.file.sync()?;
        self.sealed.push(self.current.id);
        let id = self.current.id + 1;
        let file = self.vfs.create(&Self::seg_path(&self.opts.dir, id))?;
        self.current = OpenSegment { id, file, bytes: 0 };
        self.appended_since_sync = false;
        self.maybe_gc()?;
        Ok(())
    }

    /// Durable state of a cohort (paper's `f.lst` / `f.cmt`).
    pub fn state(&self, cohort: RangeId) -> CohortLogState {
        let cp = self.checkpoints.get(cohort);
        match self.index.get(&cohort) {
            Some(e) => CohortLogState {
                last_lsn: e.last_lsn.max(cp),
                last_committed: e.last_commit_note.max(cp),
            },
            None => CohortLogState { last_lsn: cp, last_committed: cp },
        }
    }

    /// Replay the write records of `cohort` with LSN in `(from, to]`, in
    /// LSN order. Fails with [`Error::NotFound`] when `from` precedes the
    /// replayable floor (checkpointed / garbage-collected territory) —
    /// callers then serve catch-up from SSTables instead (§6.1).
    pub fn replay(
        &self,
        cohort: RangeId,
        from: Lsn,
        to: Lsn,
        mut f: impl FnMut(Lsn, &WriteOp),
    ) -> Result<usize> {
        if to <= from {
            // Empty interval: legal during takeover races where a follower
            // has committed past the new leader's watermark (its catch-up
            // request then covers nothing).
            return Ok(0);
        }
        let Some(entry) = self.index.get(&cohort) else {
            if from == Lsn::ZERO || from >= self.checkpoints.get(cohort) {
                return Ok(0);
            }
            return Err(Error::NotFound(format!("cohort {cohort} has no log index")));
        };
        if from < entry.floor {
            return Err(Error::NotFound(format!(
                "log for {cohort} starts above {from} (floor {})",
                entry.floor
            )));
        }
        let mut count = 0;
        for (&lsn, loc) in
            entry.records.range((std::ops::Bound::Excluded(from), std::ops::Bound::Included(to)))
        {
            let rec = self.read_at(loc)?;
            match rec.payload {
                Payload::Write(ref op) => {
                    debug_assert_eq!(rec.lsn, lsn);
                    f(lsn, op);
                    count += 1;
                }
                Payload::CommitNote => {
                    return Err(Error::Corruption("commit note in write index".into()))
                }
                // The indexed LSN selects its op out of the batch frame by
                // its offset from the batch's first LSN.
                Payload::Batch(ref ops) => {
                    debug_assert_eq!(rec.lsn.epoch(), lsn.epoch());
                    let op = lsn
                        .seq()
                        .checked_sub(rec.lsn.seq())
                        .and_then(|i| ops.get(i as usize))
                        .ok_or_else(|| {
                            Error::Corruption(format!("lsn {lsn} outside batch at {}", rec.lsn))
                        })?;
                    f(lsn, op);
                    count += 1;
                }
            }
        }
        Ok(count)
    }

    /// Collect the records of `cohort` in `(from, to]` as owned pairs.
    pub fn read_range(&self, cohort: RangeId, from: Lsn, to: Lsn) -> Result<Vec<(Lsn, WriteOp)>> {
        let mut out = Vec::new();
        self.replay(cohort, from, to, |lsn, op| out.push((lsn, op.clone())))?;
        Ok(out)
    }

    fn read_at(&self, loc: &RecordLoc) -> Result<LogRecord> {
        let mut buf = vec![0u8; loc.frame_len as usize];
        if loc.segment == self.current.id {
            self.current.file.read_exact_at(loc.offset, &mut buf)?;
        } else {
            let file = self.vfs.open(&Self::seg_path(&self.opts.dir, loc.segment))?;
            file.read_exact_at(loc.offset, &mut buf)?;
        }
        match read_frame(&buf)? {
            FrameRead::Record(rec, _) => Ok(*rec),
            FrameRead::Torn(why) => Err(Error::Corruption(format!(
                "indexed record unreadable at segment {} offset {}: {why}",
                loc.segment, loc.offset
            ))),
        }
    }

    /// Logically truncate `lsns` from `cohort`'s log (paper §6.1.1): the
    /// records stay on disk (other cohorts share the segments) but are
    /// remembered in the skipped-LSN list, excluded from the index, and
    /// will be skipped by every future local recovery.
    pub fn truncate_logically(&mut self, cohort: RangeId, lsns: &[Lsn]) -> Result<()> {
        if lsns.is_empty() {
            return Ok(());
        }
        let entry = self.index.entry(cohort).or_default();
        let list = self.skipped.cohort_mut(cohort);
        for &lsn in lsns {
            list.insert(lsn);
            if let Some(loc) = entry.records.remove(&lsn) {
                if let Some(refs) = self.seg_refs.get_mut(&loc.segment) {
                    *refs = refs.saturating_sub(1);
                }
            }
        }
        entry.last_lsn = entry
            .records
            .keys()
            .next_back()
            .copied()
            .unwrap_or(Lsn::ZERO)
            .max(self.checkpoints.get(cohort));
        self.skipped.save(self.vfs.as_ref(), &Self::skipped_path(&self.opts.dir))
    }

    /// The logically truncated LSNs currently remembered for `cohort`.
    pub fn skipped_lsns(&self, cohort: RangeId) -> Vec<Lsn> {
        self.skipped.cohort(cohort).map(|s| s.iter().collect()).unwrap_or_default()
    }

    /// Advance `cohort`'s checkpoint to `lsn` after its writes were flushed
    /// to an SSTable. Drops index entries at or below `lsn`, garbage
    /// collects skipped-LSN entries, and deletes sealed segments no cohort
    /// still needs.
    pub fn set_checkpoint(&mut self, cohort: RangeId, lsn: Lsn) -> Result<()> {
        self.checkpoints.advance(cohort, lsn);
        self.checkpoints.save(self.vfs.as_ref(), &Self::cp_path(&self.opts.dir))?;
        let entry = self.index.entry(cohort).or_default();
        if lsn > entry.floor {
            entry.floor = lsn;
        }
        if lsn > entry.last_lsn {
            entry.last_lsn = lsn;
        }
        // Split off the portion of the index that stays replayable.
        let keep = entry.records.split_off(&lsn.next());
        for (_, loc) in std::mem::replace(&mut entry.records, keep) {
            if let Some(refs) = self.seg_refs.get_mut(&loc.segment) {
                *refs = refs.saturating_sub(1);
            }
        }
        let list = self.skipped.cohort_mut(cohort);
        if !list.is_empty() {
            list.gc(lsn);
            self.skipped.save(self.vfs.as_ref(), &Self::skipped_path(&self.opts.dir))?;
        }
        self.maybe_gc()
    }

    /// The checkpoint of `cohort`.
    pub fn checkpoint(&self, cohort: RangeId) -> Lsn {
        self.checkpoints.get(cohort)
    }

    fn maybe_gc(&mut self) -> Result<()> {
        let mut kept = Vec::with_capacity(self.sealed.len());
        for &id in &self.sealed {
            if self.seg_refs.get(&id).copied().unwrap_or(0) == 0 {
                self.vfs.delete(&Self::seg_path(&self.opts.dir, id))?;
                self.seg_refs.remove(&id);
            } else {
                kept.push(id);
            }
        }
        self.sealed = kept;
        Ok(())
    }

    /// Retire `cohort`'s logical stream: its range was dissolved (split or
    /// merge) or its replica departed this node, and another stream — or
    /// another node — now owns the data. Drops the replay index, the
    /// skipped-LSN list and the checkpoint entry, releasing the stream's
    /// segment references so shared segments become collectable. The
    /// stream afterwards reads as pristine, which is exactly what a later
    /// re-handoff (the replica moving back) expects.
    pub fn retire_stream(&mut self, cohort: RangeId) -> Result<()> {
        if let Some(entry) = self.index.remove(&cohort) {
            for loc in entry.records.values() {
                if let Some(refs) = self.seg_refs.get_mut(&loc.segment) {
                    *refs = refs.saturating_sub(1);
                }
            }
        }
        self.checkpoints.remove(cohort);
        self.checkpoints.save(self.vfs.as_ref(), &Self::cp_path(&self.opts.dir))?;
        if self.skipped.by_cohort.remove(&cohort).is_some() {
            self.skipped.save(self.vfs.as_ref(), &Self::skipped_path(&self.opts.dir))?;
        }
        self.maybe_gc()
    }

    /// Number of on-disk segments (sealed + current), for tests.
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Total frames currently indexed for `cohort` (replayable writes).
    pub fn indexed_records(&self, cohort: RangeId) -> usize {
        self.index.get(&cohort).map_or(0, |e| e.records.len())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spinnaker_common::op;
    use spinnaker_common::vfs::MemVfs;

    use super::*;

    fn opts() -> WalOptions {
        WalOptions { dir: "wal".into(), segment_bytes: 8 << 20 }
    }

    fn wal_on(vfs: &MemVfs) -> Wal {
        Wal::open(Arc::new(vfs.clone()), opts()).unwrap()
    }

    fn wr(cohort: u32, epoch: u16, seq: u64) -> LogRecord {
        LogRecord::write(
            RangeId(cohort),
            Lsn::new(epoch, seq),
            op::put(&format!("k{seq}"), "c", &format!("v{seq}")),
        )
    }

    #[test]
    fn append_sync_reopen_roundtrip() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        for seq in 1..=5 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        wal.append(&LogRecord::commit_note(RangeId(0), Lsn::new(1, 3))).unwrap();
        wal.sync().unwrap();

        let reopened = wal_on(&vfs.crash_clone());
        let st = reopened.state(RangeId(0));
        assert_eq!(st.last_lsn, Lsn::new(1, 5));
        assert_eq!(st.last_committed, Lsn::new(1, 3));
        let replayed = reopened.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[0].0, Lsn::new(1, 1));
        assert_eq!(replayed[4].0, Lsn::new(1, 5));
    }

    #[test]
    fn unsynced_tail_lost_on_crash() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&wr(0, 1, 1)).unwrap();
        wal.sync().unwrap();
        wal.append(&wr(0, 1, 2)).unwrap(); // never forced

        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.state(RangeId(0)).last_lsn, Lsn::new(1, 1));
    }

    #[test]
    fn torn_tail_mid_frame_is_tolerated() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&wr(0, 1, 1)).unwrap();
        wal.sync().unwrap();
        // Simulate a torn write: append garbage directly to the segment.
        use spinnaker_common::vfs::Vfs;
        let mut f = Vfs::open(&vfs, "wal/seg-0000000001.log").unwrap();
        f.append(&[0xde, 0xad, 0xbe]).unwrap();
        f.sync().unwrap();

        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.state(RangeId(0)).last_lsn, Lsn::new(1, 1));
    }

    #[test]
    fn cohorts_share_the_log_but_keep_logical_lsns() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        // Interleave three cohorts with overlapping LSNs, as on a real node.
        for seq in 1..=4 {
            for cohort in 0..3u32 {
                wal.append(&wr(cohort, 1, seq)).unwrap();
            }
        }
        wal.sync().unwrap();
        for cohort in 0..3u32 {
            let got = wal.read_range(RangeId(cohort), Lsn::ZERO, Lsn::MAX).unwrap();
            assert_eq!(got.len(), 4, "cohort {cohort}");
            assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "LSN order");
        }
        assert_eq!(wal.segment_count(), 1, "one shared physical log");
    }

    #[test]
    fn replay_range_is_exclusive_inclusive() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        for seq in 1..=10 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        let got = wal.read_range(RangeId(0), Lsn::new(1, 3), Lsn::new(1, 7)).unwrap();
        let lsns: Vec<u64> = got.iter().map(|(l, _)| l.seq()).collect();
        assert_eq!(lsns, vec![4, 5, 6, 7]);
    }

    #[test]
    fn logical_truncation_hides_records_across_restart() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        for seq in 1..=5 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        wal.sync().unwrap();
        // Fig. 10: LSN 1.22-style orphan — here 1.4 and 1.5 get truncated.
        wal.truncate_logically(RangeId(0), &[Lsn::new(1, 4), Lsn::new(1, 5)]).unwrap();
        assert_eq!(wal.state(RangeId(0)).last_lsn, Lsn::new(1, 3));
        let got = wal.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap();
        assert_eq!(got.len(), 3);

        // The list survives a crash and is honoured by the recovery scan.
        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.state(RangeId(0)).last_lsn, Lsn::new(1, 3));
        assert_eq!(reopened.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap().len(), 3);
        assert_eq!(reopened.skipped_lsns(RangeId(0)), vec![Lsn::new(1, 4), Lsn::new(1, 5)]);
    }

    #[test]
    fn truncation_does_not_disturb_other_cohorts() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&wr(0, 1, 1)).unwrap();
        wal.append(&wr(1, 1, 1)).unwrap();
        wal.sync().unwrap();
        wal.truncate_logically(RangeId(0), &[Lsn::new(1, 1)]).unwrap();
        assert_eq!(wal.read_range(RangeId(1), Lsn::ZERO, Lsn::MAX).unwrap().len(), 1);
        assert_eq!(wal.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap().len(), 0);
    }

    #[test]
    fn segment_rollover_and_gc() {
        let vfs = MemVfs::new();
        let mut wal =
            Wal::open(Arc::new(vfs.clone()), WalOptions { dir: "wal".into(), segment_bytes: 256 })
                .unwrap();
        for seq in 1..=50 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 1, "rollover must have happened");
        let before = wal.segment_count();

        // Checkpointing everything makes old segments collectable.
        wal.set_checkpoint(RangeId(0), Lsn::new(1, 50)).unwrap();
        // GC happens on the next rollover; force one.
        for seq in 51..=80 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() < before + 3, "old segments collected");
        // Replay below the checkpoint is refused (callers use SSTables).
        assert!(wal.read_range(RangeId(0), Lsn::ZERO, Lsn::new(1, 50)).is_err());
        // Replay above still works.
        assert_eq!(wal.read_range(RangeId(0), Lsn::new(1, 50), Lsn::MAX).unwrap().len(), 30);
    }

    #[test]
    fn checkpoint_survives_restart_and_sets_floor() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        for seq in 1..=10 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        wal.sync().unwrap();
        wal.set_checkpoint(RangeId(0), Lsn::new(1, 6)).unwrap();

        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.checkpoint(RangeId(0)), Lsn::new(1, 6));
        assert!(reopened.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).is_err());
        let tail = reopened.read_range(RangeId(0), Lsn::new(1, 6), Lsn::MAX).unwrap();
        assert_eq!(tail.len(), 4);
        let st = reopened.state(RangeId(0));
        assert_eq!(st.last_lsn, Lsn::new(1, 10));
        assert_eq!(st.last_committed, Lsn::new(1, 6), "checkpoint implies committed");
    }

    #[test]
    fn commit_notes_do_not_consume_write_lsns() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&wr(0, 1, 1)).unwrap();
        wal.append(&LogRecord::commit_note(RangeId(0), Lsn::new(1, 1))).unwrap();
        wal.append(&wr(0, 1, 2)).unwrap();
        wal.sync().unwrap();
        let got = wal.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap();
        assert_eq!(got.len(), 2, "notes are not write records");
        assert_eq!(wal.state(RangeId(0)).last_committed, Lsn::new(1, 1));
    }

    #[test]
    fn epochs_interleave_correctly() {
        // Fig. 10: records from epoch 1 and epoch 2 coexist; ordering and
        // state must follow (epoch, seq).
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        for seq in 20..=21 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        for seq in 22..=30 {
            wal.append(&wr(0, 2, seq)).unwrap();
        }
        wal.sync().unwrap();
        let st = wal.state(RangeId(0));
        assert_eq!(st.last_lsn, Lsn::new(2, 30));
        let got = wal.read_range(RangeId(0), Lsn::new(1, 20), Lsn::MAX).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, Lsn::new(1, 21));
        assert_eq!(got[1].0, Lsn::new(2, 22));
    }

    #[test]
    fn retire_stream_forgets_the_cohort_and_frees_segments() {
        let vfs = MemVfs::new();
        let mut wal =
            Wal::open(Arc::new(vfs.clone()), WalOptions { dir: "wal".into(), segment_bytes: 256 })
                .unwrap();
        // Cohort 0 fills several segments; cohort 1 stays small and live.
        for seq in 1..=40 {
            wal.append(&wr(0, 1, seq)).unwrap();
        }
        wal.append(&wr(1, 1, 1)).unwrap();
        wal.truncate_logically(RangeId(0), &[Lsn::new(1, 40)]).unwrap();
        wal.set_checkpoint(RangeId(0), Lsn::new(1, 10)).unwrap();
        wal.sync().unwrap();
        let before = wal.segment_count();

        wal.retire_stream(RangeId(0)).unwrap();
        let st = wal.state(RangeId(0));
        assert_eq!(st.last_lsn, Lsn::ZERO, "stream reads as pristine");
        assert_eq!(wal.checkpoint(RangeId(0)), Lsn::ZERO);
        assert_eq!(wal.indexed_records(RangeId(0)), 0);
        assert!(wal.skipped_lsns(RangeId(0)).is_empty());
        // Rolling the segment makes the retired stream's segments garbage.
        for seq in 2..=20 {
            wal.append(&wr(1, 1, seq)).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() <= before, "retired segments collected");
        // The other cohort is untouched.
        assert_eq!(wal.read_range(RangeId(1), Lsn::ZERO, Lsn::MAX).unwrap().len(), 20);

        // And the retirement is durable across restart.
        let reopened = Wal::open(
            Arc::new(vfs.crash_clone()),
            WalOptions { dir: "wal".into(), segment_bytes: 256 },
        );
        // Old cohort-0 records may still sit in surviving segments, but
        // the checkpoint/skipped sidecars no longer mention the cohort.
        assert_eq!(reopened.unwrap().checkpoint(RangeId(0)), Lsn::ZERO);
    }

    fn batch_rec(cohort: u32, epoch: u16, first: u64, n: u64) -> LogRecord {
        let ops = (first..first + n)
            .map(|seq| op::put(&format!("k{seq}"), "c", &format!("v{seq}")))
            .collect();
        LogRecord::batch(RangeId(cohort), Lsn::new(epoch, first), ops)
    }

    #[test]
    fn batch_decomposes_into_per_lsn_replay() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&wr(0, 1, 1)).unwrap();
        wal.append(&batch_rec(0, 1, 2, 4)).unwrap(); // LSNs 1.2 .. 1.5
        wal.append(&wr(0, 1, 6)).unwrap();
        wal.sync().unwrap();
        let st = wal.state(RangeId(0));
        assert_eq!(st.last_lsn, Lsn::new(1, 6));
        let got = wal.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap();
        let lsns: Vec<u64> = got.iter().map(|(l, _)| l.seq()).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5, 6]);
        // Each decomposed op is the right one out of the frame.
        for (lsn, op) in &got {
            assert_eq!(op.key.as_bytes(), format!("k{}", lsn.seq()).as_bytes());
        }
        // A sub-range cutting through the batch still resolves per-LSN.
        let mid = wal.read_range(RangeId(0), Lsn::new(1, 2), Lsn::new(1, 4)).unwrap();
        assert_eq!(mid.iter().map(|(l, _)| l.seq()).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn batch_survives_crash_recovery_whole() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&batch_rec(0, 1, 1, 3)).unwrap();
        wal.sync().unwrap();
        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.state(RangeId(0)).last_lsn, Lsn::new(1, 3));
        assert_eq!(reopened.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap().len(), 3);
        assert_eq!(reopened.indexed_records(RangeId(0)), 3);
    }

    #[test]
    fn unsynced_batch_is_all_or_nothing_on_crash() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&wr(0, 1, 1)).unwrap();
        wal.sync().unwrap();
        wal.append(&batch_rec(0, 1, 2, 5)).unwrap(); // never forced
        let reopened = wal_on(&vfs.crash_clone());
        // The frame checksum guards the whole batch: no op of it survives.
        assert_eq!(reopened.state(RangeId(0)).last_lsn, Lsn::new(1, 1));
        assert_eq!(reopened.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap().len(), 1);
    }

    #[test]
    fn checkpoint_through_middle_of_batch() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&batch_rec(0, 1, 1, 4)).unwrap();
        wal.sync().unwrap();
        wal.set_checkpoint(RangeId(0), Lsn::new(1, 2)).unwrap();
        // Ops above the checkpoint stay replayable; below are dropped.
        let tail = wal.read_range(RangeId(0), Lsn::new(1, 2), Lsn::MAX).unwrap();
        assert_eq!(tail.iter().map(|(l, _)| l.seq()).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(wal.indexed_records(RangeId(0)), 2);
        // And the same view is rebuilt after a crash.
        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.indexed_records(RangeId(0)), 2);
        assert_eq!(reopened.state(RangeId(0)).last_lsn, Lsn::new(1, 4));
    }

    #[test]
    fn logical_truncation_inside_a_batch() {
        let vfs = MemVfs::new();
        let mut wal = wal_on(&vfs);
        wal.append(&batch_rec(0, 1, 1, 3)).unwrap();
        wal.sync().unwrap();
        wal.truncate_logically(RangeId(0), &[Lsn::new(1, 3)]).unwrap();
        assert_eq!(wal.state(RangeId(0)).last_lsn, Lsn::new(1, 2));
        let got = wal.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap();
        assert_eq!(got.iter().map(|(l, _)| l.seq()).collect::<Vec<_>>(), vec![1, 2]);
        // Honoured by recovery too.
        let reopened = wal_on(&vfs.crash_clone());
        assert_eq!(reopened.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap().len(), 2);
    }

    #[test]
    fn reopen_after_rollover_reads_sealed_segments() {
        let vfs = MemVfs::new();
        {
            let mut wal = Wal::open(
                Arc::new(vfs.clone()),
                WalOptions { dir: "wal".into(), segment_bytes: 200 },
            )
            .unwrap();
            for seq in 1..=20 {
                wal.append(&wr(0, 1, seq)).unwrap();
            }
            wal.sync().unwrap();
        }
        let wal = Wal::open(
            Arc::new(vfs.crash_clone()),
            WalOptions { dir: "wal".into(), segment_bytes: 200 },
        )
        .unwrap();
        assert_eq!(wal.read_range(RangeId(0), Lsn::ZERO, Lsn::MAX).unwrap().len(), 20);
    }
}
