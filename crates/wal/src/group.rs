//! Group commit for the live (threaded) runtime.
//!
//! A dedicated logger thread drains a queue of force requests: all records
//! appended while a force was in flight are covered by a single following
//! `sync` ("group commit \[13\] is also used to improve logging
//! performance", §5). The deterministic simulator models the same batching
//! in virtual time instead (see `spinnaker-sim`'s disk model); this wrapper
//! is what examples and the threaded runtime use on real files.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
// spinlint: allow(D1) -- this wrapper IS the threaded live runtime; the sim models group commit in virtual time
use std::thread::JoinHandle;

use parking_lot::Mutex;

use spinnaker_common::{Error, Result};

use crate::record::LogRecord;
use crate::wal::Wal;

enum Op {
    /// Append the records, then (once this and everything queued before it
    /// has been appended) force the log and acknowledge.
    Force(Vec<LogRecord>, Sender<Result<()>>),
    /// Append without forcing (commit notes ride with the next force).
    Append(Vec<LogRecord>),
    Shutdown,
}

/// Thread-safe, group-committing handle around a [`Wal`].
pub struct GroupCommitWal {
    wal: Arc<Mutex<Wal>>,
    tx: Sender<Op>,
    handle: Option<JoinHandle<()>>,
    forces: Arc<AtomicU64>,
    batches: Arc<AtomicU64>,
    poisoned: Arc<AtomicBool>,
}

impl GroupCommitWal {
    /// Spawn the logger thread around `wal`.
    pub fn new(wal: Wal) -> GroupCommitWal {
        let wal = Arc::new(Mutex::new(wal));
        let (tx, rx) = mpsc::channel::<Op>();
        let forces = Arc::new(AtomicU64::new(0));
        let batches = Arc::new(AtomicU64::new(0));
        let poisoned = Arc::new(AtomicBool::new(false));
        let handle = {
            let wal = wal.clone();
            let forces = forces.clone();
            let batches = batches.clone();
            let poisoned = poisoned.clone();
            // spinlint: allow(D1) -- host-thread spawn: this wrapper IS the threaded live runtime
            std::thread::Builder::new()
                .name("wal-logger".into())
                .spawn(move || logger_loop(&wal, &rx, &forces, &batches, &poisoned))
                // spinlint: allow(C1) -- process-start spawn failure, not a recovery path
                .expect("spawn wal logger thread")
        };
        GroupCommitWal { wal, tx, handle: Some(handle), forces, batches, poisoned }
    }

    /// Append `records` and force the log; blocks until durable.
    pub fn append_forced(&self, records: Vec<LogRecord>) -> Result<()> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx.send(Op::Force(records, ack_tx)).map_err(|_| gone())?;
        ack_rx.recv().map_err(|_| gone())?
    }

    /// Append `records` and force the log, delivering the acknowledgement
    /// asynchronously on the returned channel.
    pub fn append_forced_async(&self, records: Vec<LogRecord>) -> Result<Receiver<Result<()>>> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx.send(Op::Force(records, ack_tx)).map_err(|_| gone())?;
        Ok(ack_rx)
    }

    /// Append `records` without forcing (a non-forced log write, §5).
    pub fn append_unforced(&self, records: Vec<LogRecord>) -> Result<()> {
        self.tx.send(Op::Append(records)).map_err(|_| gone())
    }

    /// Run `f` against the underlying log (for reads, checkpoints,
    /// truncation). Queued appends issued before this call may still be in
    /// flight; use only from quiesced contexts (recovery, tests).
    pub fn with_wal<T>(&self, f: impl FnOnce(&mut Wal) -> T) -> T {
        f(&mut self.wal.lock())
    }

    /// Total physical forces performed.
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Total force *requests* acknowledged (≥ [`Self::forces`]; the ratio
    /// is the group-commit batching factor).
    pub fn force_requests(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// True once any append or force has failed; the device should be
    /// treated as dead and the node taken out of its cohorts.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

fn gone() -> Error {
    Error::Unavailable("wal logger thread is gone".into())
}

impl Drop for GroupCommitWal {
    fn drop(&mut self) {
        let _ = self.tx.send(Op::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn logger_loop(
    wal: &Mutex<Wal>,
    rx: &Receiver<Op>,
    forces: &AtomicU64,
    batches: &AtomicU64,
    poisoned: &AtomicBool,
) {
    loop {
        // Block for the first request...
        let first = match rx.recv() {
            Ok(op) => op,
            Err(_) => return,
        };
        // ...then drain everything else already queued: that whole batch is
        // covered by one force.
        let mut batch = vec![first];
        while let Ok(op) = rx.try_recv() {
            batch.push(op);
        }

        let mut waiters: Vec<Sender<Result<()>>> = Vec::new();
        let mut shutdown = false;
        let result = {
            let mut wal = wal.lock();
            let mut res: Result<()> = Ok(());
            for op in batch {
                match op {
                    Op::Force(records, ack) => {
                        if res.is_ok() {
                            res = wal.append_many(&records);
                        }
                        waiters.push(ack);
                    }
                    Op::Append(records) => {
                        if res.is_ok() {
                            res = wal.append_many(&records);
                        }
                    }
                    Op::Shutdown => shutdown = true,
                }
            }
            if res.is_ok() && !waiters.is_empty() {
                res = wal.sync();
                forces.fetch_add(1, Ordering::Relaxed);
            }
            res
        };
        batches.fetch_add(waiters.len() as u64, Ordering::Relaxed);
        if result.is_err() {
            poisoned.store(true, Ordering::Relaxed);
        }
        for ack in waiters {
            let to_send = match &result {
                Ok(()) => Ok(()),
                Err(e) => Err(Error::Unavailable(format!("log force failed: {e}"))),
            };
            let _ = ack.send(to_send);
        }
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spinnaker_common::op;
    use spinnaker_common::vfs::MemVfs;
    use spinnaker_common::{Lsn, RangeId};

    use crate::wal::WalOptions;

    use super::*;

    fn rec(seq: u64) -> LogRecord {
        LogRecord::write(RangeId(0), Lsn::new(1, seq), op::put(&format!("k{seq}"), "c", "v"))
    }

    fn make() -> (MemVfs, GroupCommitWal) {
        let vfs = MemVfs::new();
        let wal = Wal::open(Arc::new(vfs.clone()), WalOptions::default()).unwrap();
        (vfs, GroupCommitWal::new(wal))
    }

    #[test]
    fn forced_appends_are_durable() {
        let (vfs, gc) = make();
        gc.append_forced(vec![rec(1), rec(2)]).unwrap();
        drop(gc);
        let wal = Wal::open(Arc::new(vfs.crash_clone()), WalOptions::default()).unwrap();
        assert_eq!(wal.state(RangeId(0)).last_lsn, Lsn::new(1, 2));
    }

    #[test]
    fn concurrent_forces_batch_under_fewer_syncs() {
        let (_vfs, gc) = make();
        let gc = Arc::new(gc);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let gc = gc.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        gc.append_forced(vec![rec(t * 1000 + i + 1)]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let requests = gc.force_requests();
        let physical = gc.forces();
        assert_eq!(requests, 400);
        assert!(physical <= requests, "group commit: {physical} forces for {requests} requests");
    }

    #[test]
    fn unforced_rides_with_next_force() {
        let (_vfs, gc) = make();
        gc.append_unforced(vec![LogRecord::commit_note(RangeId(0), Lsn::new(1, 1))]).unwrap();
        gc.append_forced(vec![rec(1)]).unwrap();
        gc.with_wal(|w| {
            assert_eq!(w.state(RangeId(0)).last_committed, Lsn::new(1, 1));
            assert_eq!(w.state(RangeId(0)).last_lsn, Lsn::new(1, 1));
        });
    }

    #[test]
    fn async_force_acknowledges() {
        let (_vfs, gc) = make();
        let rx = gc.append_forced_async(vec![rec(9)]).unwrap();
        rx.recv().unwrap().unwrap();
        gc.with_wal(|w| assert_eq!(w.state(RangeId(0)).last_lsn, Lsn::new(1, 9)));
    }
}
