//! The root `spinnaker` facade must keep re-exporting every crate under
//! its documented module names, and the crate-level doc-comment's
//! quick-start must keep working. This is the same code as the doc-test
//! in `src/lib.rs`, pinned here as a plain integration test so the facade
//! can't rot even if doc-tests are skipped.

use spinnaker::core::client::Workload;
use spinnaker::core::cluster::{ClusterConfig, SimCluster};
use spinnaker::sim::SECS;

#[test]
fn doc_quick_start_runs_to_completion() {
    // A deterministic 5-node cluster on simulated hardware.
    let mut cluster = SimCluster::new(ClusterConfig { nodes: 5, ..Default::default() });
    let stats = cluster.add_client(
        Workload::Writes { keys: 1000, value_size: 512 },
        2 * SECS, // start after elections settle
        2 * SECS,
        6 * SECS,
    );
    cluster.run_until(6 * SECS);
    assert!(stats.borrow().completed > 0);
}

#[test]
fn facade_reexports_every_crate() {
    // One symbol per re-exported module; a missing `pub use` in
    // src/lib.rs fails this at compile time.
    let _lsn = spinnaker::common::Lsn::new(1, 1);
    let _coord = spinnaker::coordination::Coord::new();
    let _acceptor = spinnaker::paxos::Acceptor::<u64>::new();
    let _stats = spinnaker::sim::LatencyStats::default();
    let _memtable = spinnaker::storage::Memtable::new();
    let _wal_opts = spinnaker::wal::WalOptions::default();
    let _cfg = spinnaker::core::cluster::ClusterConfig::default();
    let _policy = spinnaker::eventual::FailoverPolicy::ContinueWithoutPeer;
}
