//! The Appendix B recovery walk-through (Fig. 10), asserted at the level
//! of its guarantees: simultaneous failures, epoch bumps, re-proposal of
//! unresolved writes, logical truncation of orphaned records, and full
//! convergence of a late-returning replica.

use spinnaker::common::RangeId;
use spinnaker::core::client::Workload;
use spinnaker::core::cluster::{ClusterConfig, SimCluster};
use spinnaker::core::node::Role;
use spinnaker::sim::{DiskProfile, SECS};

fn cluster(seed: u64) -> SimCluster {
    let mut cfg = ClusterConfig { nodes: 3, seed, disk: DiskProfile::Ssd, ..Default::default() };
    cfg.node.commit_period = 500_000_000; // 0.5 s: leave an uncommitted tail
    SimCluster::new(cfg)
}

#[test]
fn whole_cohort_crash_then_majority_restart_recovers_with_epoch_bump() {
    let mut c = cluster(11);
    let stats = c.add_client(Workload::SingleRangeWrites { value_size: 256 }, SECS, 0, 60 * SECS);
    stats.borrow_mut().trace = Some(Vec::new());
    c.run_until(5 * SECS);
    let epoch_before = c
        .with_node(0, |n| n.epoch_of(RangeId(0)))
        .or_else(|| c.with_node(1, |n| n.epoch_of(RangeId(0))))
        .unwrap();
    let committed_before: Vec<u64> =
        stats.borrow().trace.as_ref().unwrap().iter().map(|(t, _)| *t).collect();
    assert!(!committed_before.is_empty(), "writes flowed before the crash");

    // S0 -> S1: all three nodes go down mid-flight.
    for n in 0..3 {
        c.crash_node(5 * SECS + n as u64, n, true);
    }
    c.run_until(6 * SECS);
    assert!(c.leader_of(RangeId(0)).is_none(), "everything is down");

    // S1 -> S2: two nodes come back; local recovery + election + takeover.
    c.restart_node(7 * SECS, 0);
    c.restart_node(7 * SECS, 1);
    c.run_until(20 * SECS);
    let leader = c.leader_of(RangeId(0)).expect("majority recovered the cohort");
    let epoch_after = c.with_node(leader, |n| n.epoch_of(RangeId(0))).unwrap();
    assert!(
        epoch_after > epoch_before,
        "takeover must bump the epoch: {epoch_before} -> {epoch_after}"
    );

    // S2 -> S3: new writes commit in the new epoch.
    let after: usize = {
        let s = stats.borrow();
        let trace = s.trace.as_ref().unwrap();
        trace.iter().filter(|(t, _)| *t > 7 * SECS).count()
    };
    assert!(after > 10, "writes resumed in the new epoch: {after}");

    // S3 -> S4: the third node returns and catches up; any records it held
    // that the cohort discarded are logically truncated, and its committed
    // watermark converges with the leader's.
    c.run_until(30 * SECS);
    c.restart_node(30 * SECS, 2);
    c.run_until(45 * SECS);
    assert_eq!(c.with_node(2, |n| n.role(RangeId(0))).unwrap(), Role::Follower);
    let leader_cmt = c.with_node(leader, |n| n.last_committed(RangeId(0))).unwrap();
    let node2_cmt = c.with_node(2, |n| n.last_committed(RangeId(0))).unwrap();
    assert!(
        leader_cmt.as_u64() - node2_cmt.as_u64() < 1 << 22,
        "returning replica converged: {node2_cmt} vs {leader_cmt}"
    );
    assert_eq!(node2_cmt.epoch(), epoch_after, "follower is in the new epoch");
}

#[test]
fn no_committed_write_is_lost_across_leader_changes() {
    // Run load, kill the leader twice in sequence; every write that was
    // acknowledged must still be readable from the cohort afterwards.
    let mut c = cluster(12);
    let stats = c.add_client(Workload::SingleRangeWrites { value_size: 128 }, SECS, 0, 60 * SECS);
    stats.borrow_mut().trace = Some(Vec::new());

    c.run_until(5 * SECS);
    let l1 = c.leader_of(RangeId(0)).unwrap();
    c.crash_node(5 * SECS, l1, true);
    c.run_until(15 * SECS);
    let l2 = c.leader_of(RangeId(0)).expect("second leader");
    assert_ne!(l1, l2);
    c.restart_node(15 * SECS, l1);
    c.run_until(25 * SECS);
    c.crash_node(25 * SECS, l2, true);
    c.run_until(40 * SECS);
    let l3 = c.leader_of(RangeId(0)).expect("third leader");
    assert_ne!(l2, l3);

    // Acknowledged writes (the trace) vs what the final leader serves.
    // SingleRangeWrites cycles keys 0..4096 in order, so the number of
    // acknowledged writes tells us which keys must exist.
    let acked = stats.borrow().total_completed;
    let must_exist = acked.min(4096);
    let missing: Vec<u64> = (0..must_exist)
        .filter(|&i| {
            let key = spinnaker::core::partition::u64_to_key(i);
            !c.with_node(l3, |n| {
                n.store(RangeId(0))
                    .and_then(|s| s.get(&key).ok().flatten())
                    .map(|row| row.get_live(b"c").is_some())
                    .unwrap_or(false)
            })
            .unwrap_or(false)
        })
        .collect();
    assert!(
        missing.is_empty(),
        "committed writes lost after 2 leader changes: {:?} (of {acked} acked)",
        &missing[..missing.len().min(10)]
    );
}
