//! Optimistic concurrency control with conditional put (§3's counter
//! pattern): concurrent writers on one key never lose an update.

use spinnaker::core::client::Workload;
use spinnaker::core::cluster::{ClusterConfig, SimCluster};
use spinnaker::sim::{DiskProfile, SECS};

#[test]
fn concurrent_conditional_puts_serialize_without_lost_updates() {
    let mut c = SimCluster::new(ClusterConfig {
        nodes: 5,
        seed: 31,
        disk: DiskProfile::Ssd,
        ..Default::default()
    });
    let writers: Vec<_> = (0..4)
        .map(|_| {
            c.add_client(
                Workload::ConditionalPuts { keys: 1, value_size: 32 },
                2 * SECS,
                2 * SECS,
                12 * SECS,
            )
        })
        .collect();
    c.run_until(12 * SECS);

    let mut ok = 0u64;
    let mut conflicts = 0u64;
    for w in &writers {
        let w = w.borrow();
        ok += w.completed;
        conflicts += w.retries;
    }
    assert!(ok > 100, "progress under contention: {ok}");
    assert!(conflicts > 0, "contention actually happened: {conflicts}");
    // Linearizability of the version chain: each success consumed exactly
    // one version; the final stored version must therefore be the LSN of
    // the (ok_total)-th committed conditional write — i.e. successes
    // never overwrote each other blindly. We verify through the version
    // monotonicity the server enforces: a success count equal to the
    // number of committed writes on the column.
    let range = c.ring.range_of(&spinnaker::core::partition::u64_to_key(0));
    let leader = c.leader_of(range).unwrap();
    let stored = c
        .with_node(leader, |n| {
            n.store(range)
                .and_then(|s| s.get(&spinnaker::core::partition::u64_to_key(0)).ok().flatten())
                .and_then(|row| row.get_live(b"c").map(|cv| cv.version))
        })
        .flatten()
        .expect("counter exists");
    assert!(stored > 0);
}

#[test]
fn timeline_reads_eventually_observe_committed_writes() {
    let mut cfg =
        ClusterConfig { nodes: 5, seed: 32, disk: DiskProfile::Ssd, ..Default::default() };
    cfg.node.commit_period = 200_000_000;
    let mut c = SimCluster::new(cfg);
    c.add_client(Workload::SingleRangeWrites { value_size: 64 }, SECS, 0, 10 * SECS);
    c.run_until(12 * SECS); // quiesce past a commit period
    let range = spinnaker::common::RangeId(0);
    // Every replica (leader and followers) serves the same committed data
    // after the commit message propagates.
    let key = spinnaker::core::partition::u64_to_key(0);
    let values: Vec<Option<u64>> = c
        .ring
        .cohort(range)
        .into_iter()
        .map(|n| {
            c.with_node(n, |node| {
                node.store(range)
                    .and_then(|s| s.get(&key).ok().flatten())
                    .and_then(|row| row.get_live(b"c").map(|cv| cv.version))
            })
            .flatten()
        })
        .collect();
    assert!(values.iter().all(|v| v.is_some()), "all replicas hold the row: {values:?}");
}
