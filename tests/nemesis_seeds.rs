//! Pinned nemesis regression seeds.
//!
//! Each seed here either caught a real bug once or exercises a fault
//! mix worth keeping under permanent regression. A seed is a complete
//! reproduction (campaigns are pure functions of the seed), so pinning
//! the seed pins the exact interleaving that found the bug.
//!
//! When a nemesis sweep fails in CI, add the failing seed here after
//! fixing the bug.

use spinnaker_nemesis::run_seed;

#[test]
fn pinned_seeds_stay_clean() {
    // 10: a partition dropped proposes to a follower, leaving a hole in
    //     its log; the next election elected it anyway (its last-LSN
    //     matched the complete replica's) and acknowledged writes
    //     vanished. Fixed by refusing to append over a gap — the
    //     election's max-lst rule is only sound over gap-free logs.
    // 29: a conditional put was rejected against a *pending* version and
    //     the failure reply escaped before that write committed — the
    //     client observed uncommitted state that strong reads could not
    //     yet see. Fixed by holding such rejections until the observed
    //     LSN commits.
    // 1, 7: high-fault-count mixes (splits/merges/moves under partitions
    //     and disk faults) kept as general coverage.
    for seed in [1u64, 7, 10, 29] {
        let r = run_seed(seed);
        assert!(r.violations.is_empty(), "seed {seed} inconsistent: {:#?}", r.violations);
        assert!(!r.stalled, "seed {seed} stalled after heal: {:?}", r.health);
        assert_eq!(
            r.ops_issued,
            r.ops_completed,
            "seed {seed}: {} of {} ops never resolved",
            r.ops_issued - r.ops_completed,
            r.ops_issued
        );
    }
}
