//! Durability: acknowledged writes survive a whole-cluster power failure
//! (the MemVfs crash model drops everything not fsync'd).

use spinnaker::common::RangeId;
use spinnaker::core::client::Workload;
use spinnaker::core::cluster::{ClusterConfig, SimCluster};
use spinnaker::core::partition::u64_to_key;
use spinnaker::sim::{DiskProfile, SECS};

#[test]
fn acknowledged_writes_survive_full_cluster_power_loss() {
    let mut cfg =
        ClusterConfig { nodes: 3, seed: 21, disk: DiskProfile::Ssd, ..Default::default() };
    cfg.node.commit_period = 250_000_000;
    let mut c = SimCluster::new(cfg);
    let stats = c.add_client(Workload::SingleRangeWrites { value_size: 256 }, SECS, 0, 60 * SECS);
    stats.borrow_mut().trace = Some(Vec::new());
    c.run_until(6 * SECS);

    // Power failure: all nodes at once (unsynced state is gone).
    for n in 0..3 {
        c.crash_node(6 * SECS, n, true);
    }
    c.run_until(7 * SECS);
    let acked_before = stats.borrow().total_completed;
    assert!(acked_before > 20, "enough writes acked before the outage");

    // Cold restart of everything.
    for n in 0..3 {
        c.restart_node(8 * SECS, n);
    }
    c.run_until(25 * SECS);
    let leader = c.leader_of(RangeId(0)).expect("cohort recovered");

    let must_exist = acked_before.min(4096);
    for i in 0..must_exist {
        let key = u64_to_key(i);
        let present = c
            .with_node(leader, |n| {
                n.store(RangeId(0))
                    .and_then(|s| s.get(&key).ok().flatten())
                    .map(|row| row.get_live(b"c").is_some())
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(present, "acked write #{i} lost in the power failure");
    }
}

#[test]
fn storage_stack_survives_crash_at_every_layer() {
    // WAL + sstables + checkpoints + skipped lists all reload from the
    // synced image; exercised indirectly above, directly here via the
    // public crate APIs.
    use spinnaker::common::vfs::{MemVfs, Vfs};
    use spinnaker::common::{op, Lsn, RangeId};
    use spinnaker::wal::{LogRecord, Wal, WalOptions};
    use std::sync::Arc;

    let vfs = MemVfs::new();
    {
        let mut wal = Wal::open(Arc::new(vfs.clone()), WalOptions::default()).unwrap();
        for i in 1..=50 {
            wal.append(&LogRecord::write(
                RangeId(0),
                Lsn::new(1, i),
                op::put(&format!("k{i}"), "c", "v"),
            ))
            .unwrap();
        }
        wal.sync().unwrap();
        wal.truncate_logically(RangeId(0), &[Lsn::new(1, 50)]).unwrap();
        wal.set_checkpoint(RangeId(0), Lsn::new(1, 10)).unwrap();
    }
    let after = vfs.crash_clone();
    assert!(after.exists("wal/skipped").unwrap());
    let wal = Wal::open(Arc::new(after), WalOptions::default()).unwrap();
    assert_eq!(wal.state(RangeId(0)).last_lsn, Lsn::new(1, 49), "truncation survived");
    assert_eq!(wal.checkpoint(RangeId(0)), Lsn::new(1, 10), "checkpoint survived");
    assert_eq!(
        wal.read_range(RangeId(0), Lsn::new(1, 10), Lsn::MAX).unwrap().len(),
        39,
        "replayable tail = 11..=49"
    );
}
